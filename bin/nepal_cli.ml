(* The `nepal` command-line tool: inspect the layered model, generate
   the evaluation topologies, run Nepal queries against them (on any
   backend), and open an interactive query loop. *)

module Nepal = Core.Nepal
open Cmdliner

(* ---- shared setup --------------------------------------------------- *)

type topology = Virt | Legacy_flat | Legacy_classed

let topology_conv =
  let parse = function
    | "virt" -> Ok Virt
    | "legacy" | "legacy-flat" -> Ok Legacy_flat
    | "legacy-classed" -> Ok Legacy_classed
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S (virt|legacy|legacy-classed)" s))
  in
  let print ppf = function
    | Virt -> Format.pp_print_string ppf "virt"
    | Legacy_flat -> Format.pp_print_string ppf "legacy"
    | Legacy_classed -> Format.pp_print_string ppf "legacy-classed"
  in
  Arg.conv (parse, print)

let topology_arg =
  Arg.(value & opt topology_conv Virt
       & info [ "t"; "topology" ] ~docv:"TOPOLOGY"
           ~doc:"Topology to generate: $(b,virt) (the virtualized service), \
                 $(b,legacy) (flat legacy graph), or $(b,legacy-classed).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let scale_arg =
  Arg.(value & opt int 8000
       & info [ "nodes" ] ~docv:"N" ~doc:"Node count for the legacy topology.")

let history_arg =
  Arg.(value & flag
       & info [ "history" ] ~doc:"Simulate the 60-day churn history after loading.")

let backend_arg =
  Arg.(value & opt (enum [ ("native", `Native); ("relational", `Relational); ("gremlin", `Gremlin) ]) `Native
       & info [ "b"; "backend" ] ~docv:"BACKEND"
           ~doc:"Execution target: $(b,native), $(b,relational) or $(b,gremlin).")

let build_store topology seed nodes history =
  match topology with
  | Virt ->
      let t = Nepal.Virt_service.generate ~seed () in
      if history then Nepal.Virt_service.simulate_history ~seed:(seed + 1) t;
      t.Nepal.Virt_service.store
  | Legacy_flat ->
      let t = Nepal.Legacy.generate ~seed ~nodes Nepal.Legacy.Flat in
      if history then Nepal.Legacy.simulate_history ~seed:(seed + 1) t;
      t.Nepal.Legacy.store
  | Legacy_classed ->
      let t = Nepal.Legacy.generate ~seed ~nodes Nepal.Legacy.Classed in
      if history then Nepal.Legacy.simulate_history ~seed:(seed + 1) t;
      t.Nepal.Legacy.store

let connect backend store =
  match backend with
  | `Native -> Ok (Nepal.native_conn store)
  | `Relational -> (
      match Nepal.to_relational (Nepal.of_store store) with
      | Ok rb -> Ok (Nepal.relational_conn rb)
      | Error e -> Error e)
  | `Gremlin -> (
      match Nepal.to_gremlin (Nepal.of_store store) with
      | Ok gb -> Ok (Nepal.gremlin_conn gb)
      | Error e -> Error e)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* ---- subcommands ----------------------------------------------------- *)

let schema_cmd =
  let file =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"TOSCA schema file to validate (defaults to the built-in layered model).")
  in
  let run file =
    match file with
    | None ->
        print_string (Nepal.Model.tosca ());
        `Ok ()
    | Some path -> (
        let ic = open_in path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Nepal.Tosca.parse text with
        | Ok s ->
            Format.printf "%a" Nepal.Schema.pp s;
            `Ok ()
        | Error e -> `Error (false, e))
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the built-in layered network model, or validate a TOSCA file.")
    Term.(ret (const run $ file))

let generate_cmd =
  let run topology seed nodes history =
    let store = build_store topology seed nodes history in
    Format.printf "nodes:            %d@."
      (Nepal.Graph_store.count_current store ~cls:"Node");
    Format.printf "edges:            %d@."
      (Nepal.Graph_store.count_current store ~cls:"Edge");
    Format.printf "entities (ever):  %d@." (Nepal.Graph_store.count_entities store);
    Format.printf "stored versions:  %d@." (Nepal.Graph_store.count_versions store);
    Format.printf "class histogram:@.";
    List.iter
      (fun (cls, n) -> Format.printf "  %-24s %6d@." cls n)
      (Nepal.Graph_store.class_histogram store);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate an evaluation topology and print its statistics.")
    Term.(ret (const run $ topology_arg $ seed_arg $ scale_arg $ history_arg))

let run_query conn ?optimizer text =
  let t0 = Unix.gettimeofday () in
  match Nepal.query_on conn ?optimizer text with
  | Error e -> Error e
  | Ok result ->
      let dt = Unix.gettimeofday () -. t0 in
      Nepal.Engine.pp_result Format.std_formatter result;
      Format.printf "(%d result(s) in %.3f s)@." (Nepal.Engine.result_count result) dt;
      Ok ()

let query_cmd =
  let text =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY" ~doc:"The Nepal query text.")
  in
  let legacy_plan =
    Arg.(value & flag
         & info [ "legacy-plan" ]
             ~doc:"Skip the cost-based plan compiler and use the legacy \
                   greedy anchor pick.")
  in
  let run topology seed nodes history backend legacy_plan text =
    let store = build_store topology seed nodes history in
    match connect backend store with
    | Error e -> `Error (false, e)
    | Ok conn -> (
        let optimizer = if legacy_plan then `Off else `On in
        match run_query conn ~optimizer text with
        | Ok () -> `Ok ()
        | Error e -> `Error (false, e))
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a Nepal query against a generated topology."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal query -t virt \"Retrieve P From PATHS P Where P MATCHES \
               VNF(id=100)->[Vertical()]{1,6}->Server()\"";
         ])
    Term.(ret (const run $ topology_arg $ seed_arg $ scale_arg $ history_arg
               $ backend_arg $ legacy_plan $ text))

let explain_cmd =
  let text =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY" ~doc:"The Nepal query text (without the EXPLAIN prefix).")
  in
  let analyze =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Execute the query and report measured per-operator spans \
                   (wall time, row counts, backend round-trips) instead of \
                   the planned DAG.")
  in
  let legacy_plan =
    Arg.(value & flag
         & info [ "legacy-plan" ]
             ~doc:"Skip the cost-based plan compiler and show the legacy \
                   greedy plan.")
  in
  let run topology seed nodes history backend analyze legacy_plan text =
    let store = build_store topology seed nodes history in
    match connect backend store with
    | Error e -> `Error (false, e)
    | Ok conn -> (
        let prefixed =
          (if analyze then "EXPLAIN ANALYZE " else "EXPLAIN ") ^ text
        in
        let optimizer = if legacy_plan then `Off else `On in
        match Nepal.query_on conn ~optimizer prefixed with
        | Error e -> `Error (false, e)
        | Ok result ->
            Nepal.Engine.pp_result Format.std_formatter result;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the planned operator DAG for a query ($(b,--analyze): \
             execute it and report measured per-operator spans; \
             $(b,--legacy-plan): bypass the cost-based planner)."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal explain --analyze -b relational \"Retrieve P From PATHS P \
               Where P MATCHES VM()->[Virtual()]->VM()\"";
         ])
    Term.(ret (const run $ topology_arg $ seed_arg $ scale_arg $ history_arg
               $ backend_arg $ analyze $ legacy_plan $ text))

let repl_cmd =
  let run topology seed nodes history backend =
    let store = build_store topology seed nodes history in
    match connect backend store with
    | Error e -> `Error (false, e)
    | Ok conn ->
        Format.printf "nepal> loaded %d nodes / %d edges; empty line quits.@."
          (Nepal.Graph_store.count_current store ~cls:"Node")
          (Nepal.Graph_store.count_current store ~cls:"Edge");
        let rec loop () =
          Format.printf "nepal> %!";
          match In_channel.input_line stdin with
          | None | Some "" -> `Ok ()
          | Some line ->
              (match run_query conn line with
              | Ok () -> ()
              | Error e -> Format.printf "error: %s@." e);
              loop ()
        in
        loop ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive Nepal query loop over a generated topology.")
    Term.(ret (const run $ topology_arg $ seed_arg $ scale_arg $ history_arg $ backend_arg))

let paths_cmd =
  let text =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"RPE" ~doc:"A regular pathway expression.")
  in
  let at =
    Arg.(value & opt (some string) None
         & info [ "at" ] ~docv:"TS" ~doc:"Evaluate as a timeslice at this instant.")
  in
  let run topology seed nodes history text at =
    let store = build_store topology seed nodes history in
    let db = Nepal.of_store store in
    let tc =
      match at with
      | None -> Ok Nepal.Time_constraint.Snapshot
      | Some ts -> (
          match Nepal.Time_point.of_string ts with
          | Ok t -> Ok (Nepal.Time_constraint.at t)
          | Error e -> Error e)
    in
    match tc with
    | Error e -> `Error (false, e)
    | Ok tc -> (
        match Nepal.find_paths db ~tc text with
        | Error e -> `Error (false, e)
        | Ok paths ->
            List.iter (fun p -> Format.printf "%s@." (Nepal.Path.to_string p)) paths;
            Format.printf "(%d pathway(s))@." (List.length paths);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Evaluate a bare RPE and print the matching pathways.")
    Term.(ret (const run $ topology_arg $ seed_arg $ scale_arg $ history_arg $ text $ at))

let when_exists_cmd =
  let text =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"RPE" ~doc:"A regular pathway expression.")
  in
  let from_arg =
    Arg.(required & opt (some string) None
         & info [ "from" ] ~docv:"TS" ~doc:"Window start.")
  in
  let to_arg =
    Arg.(required & opt (some string) None
         & info [ "to" ] ~docv:"TS" ~doc:"Window end.")
  in
  let run topology seed nodes history text from_ to_ =
    let store = build_store topology seed nodes history in
    let db = Nepal.of_store store in
    let parse ts = Nepal.Time_point.of_string ts in
    match (parse from_, parse to_) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok a, Ok b -> (
        match
          Result.bind (Nepal.Rpe_parser.parse text) (fun r ->
              Result.bind (Nepal.Rpe.validate (Nepal.schema db) r) (fun norm ->
                  Nepal.Temporal_agg.when_exists (Nepal.conn db) ~window:(a, b) norm))
        with
        | Error e -> `Error (false, e)
        | Ok set ->
            if Nepal.Interval_set.is_empty set then
              Format.printf "never@."
            else
              List.iter
                (fun iv -> Format.printf "%s@." (Nepal.Interval.to_string iv))
                (Nepal.Interval_set.to_list set);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "when-exists"
       ~doc:"When (within a window) did a satisfying pathway exist?              (the Section 4 temporal aggregation)")
    Term.(ret (const run $ topology_arg $ seed_arg $ scale_arg $ history_arg
               $ text $ from_arg $ to_arg))

(* ---- static analysis ------------------------------------------------- *)

(* Corpus format for `nepal check --file`: queries separated by blank
   lines; `#` starts a comment line; `#schema virt|legacy|legacy-classed`
   switches the catalog for subsequent queries; a `#tosca` .. `#end`
   block installs an inline TOSCA schema. *)
type corpus_item = { ci_line : int; ci_schema : Nepal.Schema.t; ci_text : string }

let parse_corpus ~default_schema path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lines = String.split_on_char '\n' text in
  let schema = ref default_schema in
  let items = ref [] in
  let buf = ref [] and buf_line = ref 0 in
  let flush_query () =
    (match List.rev !buf with
    | [] -> ()
    | ls ->
        items :=
          { ci_line = !buf_line; ci_schema = !schema; ci_text = String.concat "\n" ls }
          :: !items);
    buf := []
  in
  let err = ref None in
  let rec go n = function
    | [] -> ()
    | line :: rest when String.trim line = "" ->
        flush_query ();
        go (n + 1) rest
    | line :: rest when String.trim line = "#tosca" ->
        flush_query ();
        let block = ref [] in
        let rest = ref rest and n' = ref (n + 1) in
        while
          match !rest with
          | l :: tl when String.trim l <> "#end" ->
              block := l :: !block;
              rest := tl;
              incr n';
              true
          | _ -> false
        do () done;
        (match !rest with
        | _ :: tl ->
            rest := tl;
            incr n'
        | [] -> err := Some (Printf.sprintf "line %d: #tosca block never closed with #end" n));
        (match Nepal.Tosca.parse (String.concat "\n" (List.rev !block)) with
        | Ok s -> schema := s
        | Error e ->
            err := Some (Printf.sprintf "line %d: inline TOSCA: %s" n e));
        go !n' !rest
    | line :: rest when String.length (String.trim line) > 0 && (String.trim line).[0] = '#' ->
        let t = String.trim line in
        (match String.split_on_char ' ' t with
        | "#schema" :: name :: _ -> (
            match String.trim name with
            | "virt" -> schema := Nepal.Model.schema ()
            | "legacy" | "legacy-flat" -> schema := Nepal.Legacy.(schema Flat)
            | "legacy-classed" -> schema := Nepal.Legacy.(schema Classed)
            | other ->
                err := Some (Printf.sprintf "line %d: unknown #schema %S" n other))
        | _ -> () (* plain comment *));
        go (n + 1) rest
    | line :: rest ->
        if !buf = [] then buf_line := n;
        buf := line :: !buf;
        go (n + 1) rest
  in
  go 1 lines;
  flush_query ();
  match !err with Some e -> Error e | None -> Ok (List.rev !items)

let check_cmd =
  let text =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"QUERY" ~doc:"The Nepal query text to analyze.")
  in
  let file_arg =
    Arg.(value & opt (some file) None
         & info [ "file" ] ~docv:"PATH"
             ~doc:"Analyze every query in a corpus file instead of a single \
                   positional QUERY. Queries are separated by blank lines; \
                   $(b,#) starts a comment; $(b,#schema \
                   virt|legacy|legacy-classed) switches the catalog; a \
                   $(b,#tosca)..$(b,#end) block installs an inline schema.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit non-zero on warnings as well as errors (hints never \
                   affect the exit status).")
  in
  let run topology seed nodes history backend file json strict text =
    let gate = ref false in
    let json_items = ref [] in
    let report ~source ~label diags =
      let bad =
        List.exists
          (fun (d : Nepal.Diagnostic.t) ->
            match d.Nepal.Diagnostic.severity with
            | Nepal.Diagnostic.Error -> true
            | Nepal.Diagnostic.Warning -> strict
            | Nepal.Diagnostic.Hint -> false)
          diags
      in
      if bad then gate := true;
      if json then
        json_items :=
          List.map (fun d -> (label, Nepal.Diagnostic.to_json d)) diags
          @ !json_items
      else if diags <> [] then begin
        if label <> "" then Format.printf "%s@." label;
        List.iter
          (fun d ->
            Format.printf "%s@." (Nepal.Diagnostic.render ~source d))
          diags
      end
    in
    let outcome =
      match file with
      | Some path -> (
          let default_schema =
            match topology with
            | Virt -> Nepal.Model.schema ()
            | Legacy_flat -> Nepal.Legacy.(schema Flat)
            | Legacy_classed -> Nepal.Legacy.(schema Classed)
          in
          match parse_corpus ~default_schema path with
          | Error e -> Error e
          | Ok items ->
              List.iter
                (fun { ci_line; ci_schema; ci_text } ->
                  report ~source:ci_text
                    ~label:(Printf.sprintf "%s:%d:" path ci_line)
                    (Nepal.Analysis.analyze_string ~schema:ci_schema ci_text))
                items;
              Ok (List.length items))
      | None -> (
          match text with
          | None -> Error "pass a QUERY argument or --file PATH"
          | Some q -> (
              (* A live backend supplies cardinality estimates, enabling
                 the cost hints (NPL019); analysis never executes the
                 query. *)
              let store = build_store topology seed nodes history in
              match connect backend store with
              | Error e -> Error e
              | Ok conn ->
                  report ~source:q ~label:"" (Nepal.check_on conn q);
                  Ok 1))
    in
    match outcome with
    | Error e -> `Error (false, e)
    | Ok n ->
        if json then begin
          let items = List.rev !json_items in
          print_string "[";
          List.iteri
            (fun i (label, j) ->
              if i > 0 then print_string ",";
              Printf.printf "\n  {\"query\": \"%s\", \"diagnostic\": %s}"
                (String.concat ""
                   (List.map
                      (function
                        | '"' -> "\\\"" | '\\' -> "\\\\"
                        | c -> String.make 1 c)
                      (List.init (String.length label) (String.get label))))
                j)
            items;
          print_string "\n]\n"
        end
        else if not !gate then
          Format.printf "%d quer%s analyzed, no blocking diagnostics.@." n
            (if n = 1 then "y" else "ies");
        if !gate then `Error (false, "static analysis found blocking diagnostics")
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically analyze queries against a schema catalog without \
             executing them: unknown concepts and fields with suggestions, \
             predicate/literal type errors, schema-unsatisfiable patterns, \
             dead union branches, temporal contradictions, and cost lints."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal check \"Retrieve P From PATHS P Where P MATCHES \
               Container()->VirtualLink()->Container()\"";
           `P "nepal check --strict --file examples/queries.nepal";
         ])
    Term.(ret (const run $ topology_arg $ seed_arg $ scale_arg $ history_arg
               $ backend_arg $ file_arg $ json_arg $ strict_arg $ text))

(* ---- observability subcommands --------------------------------------- *)

let stats_cmd =
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N" ~doc:"Show only the N heaviest statements.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the table as JSON.")
  in
  let file_arg =
    Arg.(value & opt (some string) None
         & info [ "file" ] ~docv:"PATH"
             ~doc:"Statement-statistics dump to read (defaults to \
                   \\$NEPAL_STATS_DUMP). Produce one by running any nepal \
                   or bench process with NEPAL_STATS_DUMP=PATH set.")
  in
  let watch_arg =
    Arg.(value & opt (some float) None ~vopt:(Some 2.)
         & info [ "watch" ] ~docv:"SECS"
             ~doc:"Re-read and re-render the dump every SECS seconds \
                   (default 2 when the option is given bare) until \
                   interrupted — a live view of a running process that \
                   rewrites its dump.")
  in
  let run top json file watch =
    let path =
      match file with
      | Some p -> Some p
      | None -> (
          match Sys.getenv_opt "NEPAL_STATS_DUMP" with
          | Some p when p <> "" -> Some p
          | _ -> None)
    in
    match path with
    | None ->
        `Error
          (false,
           "no dump to read: pass --file PATH or set NEPAL_STATS_DUMP \
            (the same variable makes query-running processes write the \
            dump at exit)")
    | Some path -> (
        let render () =
          match Nepal.Stat_statements.load path with
          | Error e -> Error e
          | Ok sts ->
              if json then
                print_string (Nepal.Stat_statements.render_stats_json ~top sts)
              else print_string (Nepal.Stat_statements.render_stats ~top sts);
              Ok ()
        in
        match watch with
        | None -> (
            match render () with
            | Error e -> `Error (false, e)
            | Ok () -> `Ok ())
        | Some interval ->
            let interval = Float.max 0.1 interval in
            let rec loop () =
              (* \027[H\027[2J: cursor home + clear, like watch(1). *)
              print_string "\027[H\027[2J";
              Printf.printf "%s  (every %gs, ctrl-c to stop)\n\n" path interval;
              (match render () with
              | Ok () -> ()
              | Error e -> Printf.printf "(%s — retrying)\n" e);
              flush stdout;
              Unix.sleepf interval;
              loop ()
            in
            loop ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Render cumulative per-statement statistics (calls, rows, \
             round-trips, latency quantiles) from a NEPAL_STATS_DUMP file."
       ~man:
         [
           `S Manpage.s_examples;
           `P "NEPAL_STATS_DUMP=/tmp/stats.tsv dune exec bench/main.exe -- table1; \
               nepal stats --top 5 --file /tmp/stats.tsv";
           `P "nepal stats --watch 1 --file /tmp/stats.tsv";
         ])
    Term.(ret (const run $ top_arg $ json_arg $ file_arg $ watch_arg))

let serve_metrics_cmd =
  let port_arg =
    Arg.(value & opt int 9464
         & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Serve a single request, then exit (for smoke tests).")
  in
  let warm_arg =
    Arg.(value & flag
         & info [ "warm" ]
             ~doc:"Generate the virt topology and run a few queries first, so \
                   the registry has data to export.")
  in
  (* The exporter loop lives in Nepal.Http_metrics now, where accepted
     sockets carry a receive timeout — an idle peer can no longer park
     the exporter (the historic serve-metrics wedge). *)
  let serve port once =
    match
      Nepal.Http_metrics.start ~port ~once
        ~render:Nepal.Metrics.render_openmetrics ()
    with
    | Error e -> Error e
    | Ok exporter ->
        Format.printf "serving OpenMetrics on http://localhost:%d/metrics%s@."
          (Nepal.Http_metrics.port exporter)
          (if once then " (one request)" else "");
        Format.print_flush ();
        Nepal.Http_metrics.wait exporter;
        Nepal.Http_metrics.stop exporter;
        Ok ()
  in
  let run port once warm =
    if warm then begin
      let store = build_store Virt 42 8000 false in
      let conn = Nepal.native_conn store in
      List.iter
        (fun q ->
          match Nepal.query_on conn q with
          | Ok _ -> ()
          | Error e -> Format.eprintf "warm query failed: %s@." e)
        [
          "Retrieve P From PATHS P Where P MATCHES VNF()->VFC()";
          "Retrieve P From PATHS P Where P MATCHES \
           VNF()->[Vertical()]{1,4}->Server()";
        ]
    end;
    match serve port once with
    | Ok () -> `Ok ()
    | Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "serve-metrics"
       ~doc:"Expose the in-process metrics registry as an OpenMetrics \
             endpoint (GET /metrics) over a minimal HTTP/1.0 listener.")
    Term.(ret (const run $ port_arg $ once_arg $ warm_arg))

(* ---- JSONL server / client / bench ----------------------------------- *)

(* Per-session runner on the Nepal.query_on path, so wire answers carry
   exactly the text (and enriched errors) the in-process API produces. *)
let session_runner store () =
  let conn = Nepal.native_conn store in
  let reply ?trace result =
    {
      Nepal.Server.qr_count = Nepal.Engine.result_count result;
      qr_text = Format.asprintf "%a" Nepal.Engine.pp_result result;
      qr_trace = trace;
    }
  in
  fun ~trace text ->
    if trace then
      match Nepal.Explain.run_string_wire_traced ~conn text with
      | Ok tr ->
          Ok
            (reply
               ~trace:(Nepal.Explain.traced_json tr)
               tr.Nepal.Explain.tr_result)
      | Error e -> Error e
    else
      match Nepal.query_on conn text with
      | Ok result -> Ok (reply result)
      | Error e -> Error e

let wire_port_arg =
  Arg.(value & opt int 9642
       & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"TCP port of the JSONL endpoint.")

let serve_cmd =
  let max_sessions_arg =
    Arg.(value & opt int 64
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Refuse connections beyond N concurrent sessions.")
  in
  let workers_arg =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Query-executor domains (default: \\$NEPAL_DOMAINS or the \
                   core count).")
  in
  let debounce_arg =
    Arg.(value & opt (some float) None
         & info [ "debounce" ] ~docv:"MS"
             ~doc:"Watch debounce window in milliseconds.")
  in
  let smoke_arg =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Start on a free port, run one loopback round-trip, verify \
                   it against in-process evaluation, shut down cleanly, exit.")
  in
  let run topology seed nodes history port max_sessions workers debounce smoke =
    let store = build_store topology seed nodes history in
    let config =
      {
        Nepal.Server.default_config with
        port = (if smoke then 0 else port);
        max_sessions;
        workers;
        debounce_ms = debounce;
      }
    in
    match
      Nepal.Server.start ~config ~make_runner:(session_runner store) store
    with
    | Error e -> `Error (false, e)
    | Ok server ->
        if smoke then begin
          let q = "Retrieve P From PATHS P Where P MATCHES VNF()->VFC()" in
          let outcome =
            match
              Nepal.Server_client.connect ~port:(Nepal.Server.port server) ()
            with
            | Error e -> Error e
            | Ok client ->
                let ( let* ) = Result.bind in
                let r =
                  let* () = Nepal.Server_client.ping client in
                  let* reply = Nepal.Server_client.query client q in
                  let* count =
                    match (session_runner store ()) ~trace:false q with
                    | Error e -> Error ("in-process check failed: " ^ e)
                    | Ok local
                      when local.Nepal.Server.qr_text
                           = reply.Nepal.Server.qr_text
                           && local.qr_count = reply.qr_count ->
                        Ok reply.qr_count
                    | Ok _ ->
                        Error "wire result differs from in-process evaluation"
                  in
                  (* traced round-trip: same result text, plus a
                     renderable span tree in the trace member *)
                  let* traced = Nepal.Server_client.query_traced client q in
                  let* () =
                    match traced.Nepal.Server.qr_trace with
                    | Some tr
                      when traced.Nepal.Server.qr_text
                           = reply.Nepal.Server.qr_text
                           && Nepal.Wire.render_trace tr <> [] ->
                        Ok ()
                    | Some _ -> Error "traced reply malformed"
                    | None -> Error "traced query returned no trace member"
                  in
                  (* introspect round-trip: this session must be visible *)
                  let* ins = Nepal.Server_client.introspect client in
                  let* () =
                    match
                      ( Nepal.Wire_json.member "sessions" ins,
                        Nepal.Wire_json.member "executor" ins )
                    with
                    | Some (Nepal.Event_log.List (_ :: _)), Some _ -> Ok ()
                    | _ -> Error "introspect frame missing sessions/executor"
                  in
                  Ok count
                in
                Nepal.Server_client.close client;
                r
          in
          Nepal.Server.stop server;
          match outcome with
          | Ok count ->
              Format.printf "smoke ok: %d result(s), clean shutdown@." count;
              `Ok ()
          | Error e -> `Error (false, "smoke failed: " ^ e)
        end
        else begin
          Format.printf
            "serving nepal JSONL on port %d (max %d sessions; ctrl-c to stop)@."
            (Nepal.Server.port server) max_sessions;
          Format.print_flush ();
          Nepal.Server.wait server;
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the generated topology over the line-oriented JSONL wire \
             protocol: query/watch/unwatch/stats/ping verbs, concurrent \
             sessions, streamed path alerts."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal serve --history -p 9642";
           `P "nepal serve --smoke";
           `P "echo '{\"op\":\"query\",\"id\":1,\"q\":\"Retrieve P From PATHS \
               P Where P MATCHES VNF()->VFC()\"}' | nc localhost 9642";
         ])
    Term.(ret (const run $ topology_arg $ seed_arg $ scale_arg $ history_arg
               $ wire_port_arg $ max_sessions_arg $ workers_arg $ debounce_arg
               $ smoke_arg))

let client_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"IPv4 address of the server.")
  in
  let query_pos =
    Arg.(value & pos_all string []
         & info [] ~docv:"QUERY"
             ~doc:"Queries to run (quote each); with none, opens an \
                   interactive loop.")
  in
  let trace_arg =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Send {\"trace\": true} with each query and render the \
                   returned span tree (EXPLAIN ANALYZE over the wire).")
  in
  let print_reply (reply : Nepal.Server.query_reply) =
    print_string reply.Nepal.Server.qr_text;
    Printf.printf "(%d result(s))\n" reply.Nepal.Server.qr_count;
    (match reply.Nepal.Server.qr_trace with
    | Some tr ->
        print_newline ();
        List.iter print_endline (Nepal.Wire.render_trace tr)
    | None -> ());
    flush stdout
  in
  let drain_events client =
    let rec go () =
      match Nepal.Server_client.next_event ~timeout_s:0.05 client with
      | Some e ->
          print_endline (Nepal.Wire_json.to_string e);
          go ()
      | None -> ()
    in
    go ()
  in
  let interactive client =
    print_endline
      "connected; enter a query, or :trace QUERY, :watch QUERY, :unwatch N, \
       :stats, :ping, :quit (alerts print before each prompt)";
    let starts_with prefix s =
      String.length s >= String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
    in
    let rec loop () =
      drain_events client;
      print_string "nepal> ";
      flush stdout;
      match input_line stdin with
      | exception End_of_file -> ()
      | line -> (
          let line = String.trim line in
          let continue = ref true in
          (if line = "" then ()
           else if line = ":quit" || line = ":q" then continue := false
           else if line = ":ping" then
             match Nepal.Server_client.ping client with
             | Ok () -> print_endline "pong"
             | Error e -> Printf.printf "error: %s\n" e
           else if line = ":stats" then
             match Nepal.Server_client.stats client with
             | Ok j -> print_endline (Nepal.Wire_json.to_string j)
             | Error e -> Printf.printf "error: %s\n" e
           else if starts_with ":trace " line then
             let q = String.trim (String.sub line 7 (String.length line - 7)) in
             match Nepal.Server_client.query_traced client q with
             | Ok reply -> print_reply reply
             | Error e -> Printf.printf "error: %s\n" e
           else if starts_with ":watch " line then
             let q = String.trim (String.sub line 7 (String.length line - 7)) in
             match Nepal.Server_client.watch client q with
             | Ok w -> Printf.printf "watch %d registered\n" w
             | Error e -> Printf.printf "error: %s\n" e
           else if starts_with ":unwatch " line then
             let arg = String.trim (String.sub line 9 (String.length line - 9)) in
             match int_of_string_opt arg with
             | None -> print_endline "usage: :unwatch N"
             | Some w -> (
                 match Nepal.Server_client.unwatch client w with
                 | Ok true -> Printf.printf "watch %d removed\n" w
                 | Ok false -> Printf.printf "no watch %d on this session\n" w
                 | Error e -> Printf.printf "error: %s\n" e)
           else
             match Nepal.Server_client.query client line with
             | Ok reply -> print_reply reply
             | Error e -> Printf.printf "error: %s\n" e);
          flush stdout;
          if !continue then loop ())
    in
    loop ()
  in
  let run host port trace queries =
    match Unix.inet_addr_of_string host with
    | exception Failure _ -> `Error (false, "not an IPv4 address: " ^ host)
    | addr -> (
        match Nepal.Server_client.connect ~addr ~port () with
        | Error e -> `Error (false, "connect: " ^ e)
        | Ok client ->
            let outcome =
              if queries = [] then begin
                interactive client;
                `Ok ()
              end
              else
                let run_one =
                  if trace then Nepal.Server_client.query_traced
                  else Nepal.Server_client.query
                in
                let failed =
                  List.fold_left
                    (fun failed q ->
                      match run_one client q with
                      | Ok reply ->
                          print_reply reply;
                          failed
                      | Error e ->
                          Printf.eprintf "error: %s\n%!" e;
                          failed + 1)
                    0 queries
                in
                if failed = 0 then `Ok ()
                else `Error (false, Printf.sprintf "%d query(ies) failed" failed)
            in
            Nepal.Server_client.close client;
            outcome)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Connect to a running nepal server and run queries (or an \
             interactive loop) over the JSONL wire protocol."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal client \"Retrieve P From PATHS P Where P MATCHES \
               VNF()->VFC()\"";
           `P "nepal client --trace \"Retrieve P From PATHS P Where P \
               MATCHES VNF()->VFC()\"";
           `P "nepal client -p 9642   # interactive";
         ])
    Term.(ret (const run $ host_arg $ wire_port_arg $ trace_arg $ query_pos))

let bench_cmd =
  let clients_arg =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N"
             ~doc:"Concurrent closed-loop client connections.")
  in
  let seconds_arg =
    Arg.(value & opt float 5.
         & info [ "seconds" ] ~docv:"SECS"
             ~doc:"Measured duration per repeat.")
  in
  let workers_arg =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N" ~doc:"Query-executor domains.")
  in
  let bench_trace_arg =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Send every query with {\"trace\": true}: measures the \
                   cost of span collection and trace serialization on the \
                   same closed-loop mix (compare against a run without the \
                   flag).")
  in
  let repeats_arg =
    Arg.(value & opt int 3
         & info [ "repeats" ] ~docv:"N"
             ~doc:"Interleaved repeats of the measured run; medians and the \
                   noise band in trajectory files come from these.")
  in
  let noise_arg =
    Arg.(value & opt float 0.25
         & info [ "noise" ] ~docv:"FRAC"
             ~doc:"Noise-band widening as a fraction of each metric's \
                   median, beyond the observed repeat spread.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the run's trajectory (per-metric medians + noise \
                   band) as JSON to FILE.")
  in
  let baseline_arg =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Write this run as the baseline trajectory FILE for later \
                   $(b,--compare) runs (same as $(b,--json)).")
  in
  let compare_arg =
    Arg.(value & opt (some string) None
         & info [ "compare" ] ~docv:"FILE"
             ~doc:"Compare this run's medians against the baseline \
                   trajectory in FILE; exit non-zero when any metric lands \
                   outside its noise band in the bad direction.")
  in
  let telemetry_arg =
    Arg.(value & opt (some float) None
         & info [ "telemetry" ] ~docv:"MS"
             ~doc:"Telemetry tick interval for the benched server (0 \
                   disables; default \\$NEPAL_TELEM_INTERVAL_MS or 1000) — \
                   for measuring the tick's own overhead.")
  in
  let run seed history clients seconds workers trace repeats noise json_file
      baseline_file compare_file telemetry_ms =
    if clients < 1 then `Error (false, "--clients must be >= 1")
    else if repeats < 1 then `Error (false, "--repeats must be >= 1")
    else begin
      let module V = Nepal.Virt_service in
      let t = V.generate ~seed () in
      if history then V.simulate_history ~seed:(seed + 1) t;
      let store = t.V.store in
      let config =
        {
          Nepal.Server.default_config with
          port = 0;
          max_sessions = clients + 4;
          workers;
          telemetry_interval_ms = telemetry_ms;
        }
      in
      match
        Nepal.Server.start ~config ~make_runner:(session_runner store) store
      with
      | Error e -> `Error (false, e)
      | Ok server ->
          let port = Nepal.Server.port server in
          (* The Table-1 mix: top-down, bottom-up, VM-VM and Host-Host(4)
             instances sampled per client from its own rng. *)
          let pick_query rng k =
            match k mod 4 with
            | 0 -> V.q_top_down ~vnf_id:(Nepal.Prng.choose rng t.V.vnf_ids)
            | 1 -> V.q_bottom_up ~server_id:(V.sample_server_id rng t)
            | 2 ->
                let a = V.sample_container_id rng t in
                let b = V.sample_container_id rng t in
                V.q_vm_vm ~a ~b
            | _ ->
                let a = V.sample_server_id rng t in
                let b = V.sample_server_id rng t in
                V.q_host_host ~hops:4 ~a ~b
          in
          (* One measured segment against the still-running server: its
             own client-latency histogram, its own client rngs (seeded
             per segment so repeats interleave distinct query mixes). *)
          let run_segment seg =
            let lat =
              Nepal.Metrics.unregistered_histogram "bench.client_seconds"
            in
            let requests = Array.make clients 0 in
            let errors = Array.make clients 0 in
            let deadline = Unix.gettimeofday () +. Float.max 0.5 seconds in
            let client_loop i =
              match Nepal.Server_client.connect ~port () with
              | Error e ->
                  Printf.eprintf "client %d: connect: %s\n%!" i e;
                  errors.(i) <- errors.(i) + 1
              | Ok client ->
                  let rng = Nepal.Prng.create (seed + 101 + (31 * seg) + i) in
                  let run_one =
                    if trace then Nepal.Server_client.query_traced
                    else Nepal.Server_client.query
                  in
                  let k = ref i in
                  while Unix.gettimeofday () < deadline do
                    let q = pick_query rng !k in
                    incr k;
                    let t0 = Unix.gettimeofday () in
                    (match run_one client q with
                    | Ok _ -> requests.(i) <- requests.(i) + 1
                    | Error _ -> errors.(i) <- errors.(i) + 1);
                    Nepal.Metrics.observe lat (Unix.gettimeofday () -. t0)
                  done;
                  Nepal.Server_client.close client
            in
            let t0 = Unix.gettimeofday () in
            let threads =
              List.init clients (fun i -> Thread.create client_loop i)
            in
            List.iter Thread.join threads;
            let elapsed = Unix.gettimeofday () -. t0 in
            let total = Array.fold_left ( + ) 0 requests in
            let errs = Array.fold_left ( + ) 0 errors in
            let s = Nepal.Metrics.stats_of lat in
            Format.printf
              "repeat %d/%d: requests %d  errors %d  elapsed %.2fs  \
               throughput %.1f q/s  p50 %.2fms  p95 %.2fms  p99 %.2fms%s@."
              (seg + 1) repeats total errs elapsed
              (float_of_int total /. elapsed)
              (s.Nepal.Metrics.p50 *. 1e3) (s.Nepal.Metrics.p95 *. 1e3)
              (s.Nepal.Metrics.p99 *. 1e3)
              (if trace then "  (traced)" else "");
            ( errs,
              [
                ("throughput_qps", float_of_int total /. elapsed);
                ("client_p50_ms", s.Nepal.Metrics.p50 *. 1e3);
                ("client_p95_ms", s.Nepal.Metrics.p95 *. 1e3);
                ("client_p99_ms", s.Nepal.Metrics.p99 *. 1e3);
              ] )
          in
          let segments = ref [] in
          for seg = 0 to repeats - 1 do
            segments := run_segment seg :: !segments
          done;
          let segments = List.rev !segments in
          Nepal.Server.stop server;
          let sv =
            Nepal.Metrics.stats_of
              (Nepal.Metrics.histogram "server.query_seconds")
          in
          Format.printf
            "server-side evaluation: p50 %.2fms  p95 %.2fms  p99 %.2fms \
             (n=%d)@."
            (sv.Nepal.Metrics.p50 *. 1e3) (sv.Nepal.Metrics.p95 *. 1e3)
            (sv.Nepal.Metrics.p99 *. 1e3) sv.Nepal.Metrics.count;
          let reps = List.map snd segments in
          let config_kv =
            [
              ("clients", string_of_int clients);
              ("history", string_of_bool history);
              ("repeats", string_of_int repeats);
              ("seconds", Printf.sprintf "%g" seconds);
              ("seed", string_of_int seed);
              ("trace", string_of_bool trace);
              ( "workers",
                match workers with
                | Some n -> string_of_int n
                | None -> "default" );
            ]
          in
          let traj =
            Nepal.Bench_gate.of_repeats ~section:"wire" ~config:config_kv
              ~noise reps
          in
          let write_traj = function
            | None -> Ok ()
            | Some path -> (
                match Nepal.Bench_gate.write_file path traj with
                | Ok () ->
                    Format.printf "trajectory written to %s@." path;
                    Ok ()
                | Error e -> Error (path ^ ": " ^ e))
          in
          let outcome =
            let ( let* ) = Result.bind in
            let* () = write_traj json_file in
            let* () = write_traj baseline_file in
            match compare_file with
            | None -> Ok ()
            | Some path -> (
                match Nepal.Bench_gate.read_file path with
                | Error e -> Error e
                | Ok baseline -> (
                    match Nepal.Bench_gate.compare_traj ~baseline traj with
                    | Error e -> Error ("compare: " ^ e)
                    | Ok verdicts ->
                        print_string (Nepal.Bench_gate.render_report verdicts);
                        if Nepal.Bench_gate.any_regression verdicts then
                          Error
                            (Printf.sprintf "regression vs baseline %s" path)
                        else begin
                          Format.printf "no regression vs %s@." path;
                          Ok ()
                        end))
          in
          match outcome with
          | Ok () -> `Ok ()
          | Error e -> `Error (false, e)
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Closed-loop wire benchmark: start an in-process server, drive \
             it with N concurrent clients running the Table-1 query mix \
             over interleaved repeats, report throughput and latency \
             quantiles, and optionally write or gate against a trajectory \
             file."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal bench --clients 8 --seconds 10";
           `P "nepal bench --history --clients 4 --workers 4";
           `P "nepal bench --clients 4 --trace";
           `P "nepal bench --clients 2 --seconds 2 --json BENCH_wire.json";
           `P "nepal bench --clients 2 --seconds 2 --compare BENCH_wire.json";
         ])
    Term.(ret (const run $ seed_arg $ history_arg $ clients_arg $ seconds_arg
               $ workers_arg $ bench_trace_arg $ repeats_arg $ noise_arg
               $ json_arg $ baseline_arg $ compare_arg $ telemetry_arg))

let events_cmd =
  let file_arg =
    Arg.(value & opt (some string) None
         & info [ "file" ] ~docv:"PATH"
             ~doc:"Event log to read (defaults to \\$NEPAL_EVENT_LOG; \
                   must be a file path, not $(b,stderr)).")
  in
  let n_arg =
    Arg.(value & opt int 20
         & info [ "n"; "lines" ] ~docv:"N" ~doc:"Print the last N events.")
  in
  let kind_arg =
    Arg.(value & opt (some string) None
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Only events of this kind (e.g. $(b,query.slow), \
                   $(b,store.mutation)).")
  in
  let follow_arg =
    Arg.(value & flag
         & info [ "f"; "follow" ]
             ~doc:"After printing the tail, keep the file open and stream \
                   events as they are appended (like tail -f) until \
                   interrupted.")
  in
  let tail_run file n kind follow =
    let path =
      match file with
      | Some p -> Some p
      | None -> (
          match Sys.getenv_opt "NEPAL_EVENT_LOG" with
          | Some p when p <> "" && p <> "stderr" && p <> "-" -> Some p
          | _ -> None)
    in
    match path with
    | None ->
        `Error
          (false,
           "no event log to read: pass --file PATH or set NEPAL_EVENT_LOG \
            to a file path")
    | Some path -> (
        match
          try
            let ic = open_in path in
            let lines = ref [] in
            (try
               while true do
                 let line = input_line ic in
                 if line <> "" then lines := line :: !lines
               done
             with End_of_file -> ());
            close_in ic;
            Ok (List.rev !lines)
          with Sys_error e -> Error e
        with
        | Error e -> `Error (false, e)
        | Ok lines ->
            let wanted line =
              match kind with
              | None -> true
              | Some k ->
                  contains_sub line (Printf.sprintf "\"kind\":\"%s\"" k)
            in
            let lines = List.filter wanted lines in
            let total = List.length lines in
            let tail =
              if total <= n then lines
              else List.filteri (fun i _ -> i >= total - n) lines
            in
            List.iter print_endline tail;
            if not follow then `Ok ()
            else begin
              (* Stream appended bytes by polling the file length and
                 emitting only the complete lines, so a partially
                 written event is never printed. Re-opening per poll
                 also survives log rotation-by-truncation (the offset
                 resets when the file shrinks). *)
              flush stdout;
              let pos =
                ref
                  (try
                     let ic = open_in_bin path in
                     let len = in_channel_length ic in
                     close_in ic;
                     len
                   with Sys_error _ -> 0)
              in
              let carry = Buffer.create 256 in
              let rec loop () =
                (try
                   let ic = open_in_bin path in
                   let len = in_channel_length ic in
                   if len < !pos then begin
                     pos := 0;
                     Buffer.clear carry
                   end;
                   if len > !pos then begin
                     seek_in ic !pos;
                     Buffer.add_string carry
                       (really_input_string ic (len - !pos));
                     pos := len;
                     let s = Buffer.contents carry in
                     Buffer.clear carry;
                     let rec emit i =
                       match String.index_from_opt s i '\n' with
                       | Some j ->
                           let line = String.sub s i (j - i) in
                           if line <> "" && wanted line then
                             print_endline line;
                           emit (j + 1)
                       | None ->
                           Buffer.add_substring carry s i
                             (String.length s - i)
                     in
                     emit 0;
                     flush stdout
                   end;
                   close_in ic
                 with Sys_error _ | End_of_file -> ());
                Unix.sleepf 0.25;
                loop ()
              in
              loop ()
            end)
  in
  let tail_cmd =
    Cmd.v
      (Cmd.info "tail"
         ~doc:"Print the last N events from the JSONL event log; with \
               $(b,--follow), then stream new events as they arrive.")
      Term.(ret (const tail_run $ file_arg $ n_arg $ kind_arg $ follow_arg))
  in
  Cmd.group
    (Cmd.info "events"
       ~doc:"Inspect the structured event log (see NEPAL_EVENT_LOG).")
    [ tail_cmd ]

let watch_cmd =
  let query_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY"
             ~doc:"The standing Nepal query to watch (quote it).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit alerts as JSON lines.")
  in
  let events_arg =
    Arg.(value & opt int 120
         & info [ "events" ] ~docv:"N"
             ~doc:"Synthetic churn events to apply before exiting.")
  in
  let rate_arg =
    Arg.(value & opt float 25.
         & info [ "rate" ] ~docv:"PER_SEC"
             ~doc:"Churn events per second (0 = no pacing, run flat out).")
  in
  let debounce_arg =
    Arg.(value & opt (some float) None
         & info [ "debounce" ] ~docv:"MS"
             ~doc:"Debounce window in milliseconds (overrides \
                   \\$NEPAL_WATCH_DEBOUNCE_MS; default 50).")
  in
  let run seed history backend query json events rate debounce =
    let t = Nepal.Virt_service.generate ~seed () in
    if history then Nepal.Virt_service.simulate_history ~seed:(seed + 1) t;
    let store = t.Nepal.Virt_service.store in
    let mirror_provider mirror () =
      match mirror (Nepal.of_store store) with
      | Ok conn -> conn
      | Error e -> failwith ("backend mirror failed: " ^ e)
    in
    let monitor =
      match backend with
      | `Native -> Nepal.Monitor.create ?debounce_ms:debounce store
      | `Relational ->
          Nepal.Monitor.create ?debounce_ms:debounce
            ~conn_provider:
              (mirror_provider (fun db ->
                   Result.map Nepal.relational_conn (Nepal.to_relational db)))
            store
      | `Gremlin ->
          Nepal.Monitor.create ?debounce_ms:debounce
            ~conn_provider:
              (mirror_provider (fun db ->
                   Result.map Nepal.gremlin_conn (Nepal.to_gremlin db)))
            store
    in
    match Nepal.Monitor.watch monitor query with
    | Error e -> `Error (false, e)
    | Ok w ->
        let print_alert (a : Nepal.Monitor.alert) =
          if json then
            print_endline
              (Nepal.Event_log.json_to_string
                 (Nepal.Event_log.Obj
                    [
                      ("kind",
                       Nepal.Event_log.Str
                         (Nepal.Monitor.alert_kind_string a.Nepal.Monitor.al_kind));
                      ("watch", Nepal.Event_log.Int a.Nepal.Monitor.al_watch);
                      ("total", Nepal.Event_log.Int a.Nepal.Monitor.al_total);
                      ("added",
                       Nepal.Event_log.List
                         (List.map
                            (fun s -> Nepal.Event_log.Str s)
                            a.Nepal.Monitor.al_added));
                      ("removed",
                       Nepal.Event_log.List
                         (List.map
                            (fun s -> Nepal.Event_log.Str s)
                            a.Nepal.Monitor.al_removed));
                      ("at",
                       Nepal.Event_log.Str
                         (Nepal.Time_point.to_string a.Nepal.Monitor.al_at));
                      ("wall_ms",
                       Nepal.Event_log.Float (a.Nepal.Monitor.al_wall_s *. 1e3));
                    ]))
          else begin
            Printf.printf "[%s] at %s: %d matching path%s (%.2f ms)\n"
              (Nepal.Monitor.alert_kind_string a.Nepal.Monitor.al_kind)
              (Nepal.Time_point.to_string a.Nepal.Monitor.al_at)
              a.Nepal.Monitor.al_total
              (if a.Nepal.Monitor.al_total = 1 then "" else "s")
              (a.Nepal.Monitor.al_wall_s *. 1e3);
            List.iter (fun p -> Printf.printf "  + %s\n" p)
              a.Nepal.Monitor.al_added;
            List.iter (fun p -> Printf.printf "  - %s\n" p)
              a.Nepal.Monitor.al_removed
          end;
          flush stdout
        in
        if not json then begin
          Printf.printf "watching: %s\n" query;
          (match Nepal.Monitor.watch_relevant_classes w with
          | Some classes ->
              Printf.printf "relevant classes: %s\n" (String.concat ", " classes)
          | None -> print_endline "relevant classes: (all)");
          Printf.printf "debounce: %gms; churning %d events...\n\n"
            (Nepal.Monitor.debounce_seconds monitor *. 1e3)
            events;
          flush stdout
        end;
        let rng = Nepal.Prng.create (seed + 7) in
        for ev = 1 to events do
          let at =
            Nepal.Time_point.add_seconds (Nepal.Graph_store.clock store) 60.
          in
          Nepal.Virt_service.churn_step ~rng ~at ~scale_tag:(100000 + ev) t;
          List.iter print_alert (Nepal.Monitor.poll monitor);
          if rate > 0. then Unix.sleepf (1. /. rate)
        done;
        List.iter print_alert (Nepal.Monitor.flush monitor);
        if not json then begin
          let c name = Nepal.Metrics.counter_value (Nepal.Metrics.counter name) in
          Printf.printf
            "\ndone: %d changes seen, %d skipped as irrelevant, %d \
             re-evaluations, %d alerts\n"
            (c "monitor.changes") (c "monitor.skipped")
            (c "monitor.evaluations") (c "monitor.alerts")
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Register a standing path query over the virt topology and tail \
             its path.up/path.down/path.changed alerts while a synthetic \
             churn driver mutates the store."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal watch \"Retrieve P From PATHS P Where P MATCHES \
               VNF(id=25001)->[Vertical()]{1,4}->Server()\" --events 200";
           `P "nepal watch -b relational --json \"Retrieve P From PATHS P \
               Where P MATCHES Container()->VirtualLink()->Container()\"";
         ])
    Term.(ret (const run $ seed_arg $ history_arg $ backend_arg $ query_pos
               $ json_arg $ events_arg $ rate_arg $ debounce_arg))

(* ---- top: live dashboard over the introspect verb -------------------- *)

(* ---- telemetry history --------------------------------------------- *)

(* Eight block glyphs (U+2581..U+2588 as escaped UTF-8 bytes) scaled
   over the series' own min..max — a shape, not a calibrated axis. *)
let spark_blocks =
  [|
    "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88";
  |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
      let mn = List.fold_left Float.min infinity values in
      let mx = List.fold_left Float.max neg_infinity values in
      let b = Buffer.create (List.length values * 3) in
      List.iter
        (fun v ->
          let idx =
            if mx -. mn <= 1e-12 then 0
            else
              int_of_float
                (Float.min 7. (Float.max 0. ((v -. mn) /. (mx -. mn) *. 7.99)))
          in
          Buffer.add_string b spark_blocks.(idx))
        values;
      Buffer.contents b

(* Per-second rates from a cumulative counter's retained points. *)
let rate_series pts =
  let module Ts = Nepal.Timeseries in
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let dt = b.Ts.ts -. a.Ts.ts in
        let r = if dt > 0. then (b.Ts.v_last -. a.Ts.v_last) /. dt else 0. in
        go (r :: acc) rest
    | _ -> List.rev acc
  in
  go [] pts

let telemetry_cmd =
  let module Ts = Nepal.Timeseries in
  let module WJ = Nepal.Wire_json in
  let module E = Nepal.Event_log in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"IPv4 address of the server.")
  in
  let series_arg =
    Arg.(value & opt_all string []
         & info [ "series" ] ~docv:"NAME"
             ~doc:"Series to print (repeatable); with none, lists the \
                   retained series names.")
  in
  let window_arg =
    Arg.(value & opt (some float) None
         & info [ "window" ] ~docv:"SECS"
             ~doc:"Only points newer than SECS ago (default: all retained).")
  in
  let res_arg =
    let res_conv =
      Arg.enum [ ("raw", Ts.Raw); ("mid", Ts.Mid); ("coarse", Ts.Coarse) ]
    in
    Arg.(value & opt res_conv Ts.Raw
         & info [ "res" ] ~docv:"RES"
             ~doc:"Ring resolution: $(b,raw), $(b,mid) (15-tick) or \
                   $(b,coarse) (60-tick).")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print one JSON object per point (the snapshot-dump line \
                   shape) instead of the human table.")
  in
  let file_arg =
    Arg.(value & opt (some string) None
         & info [ "file" ] ~docv:"PATH"
             ~doc:"Read a NEPAL_TELEM_DUMP snapshot file instead of \
                   querying a live server.")
  in
  let print_points ~json name res (points : Ts.point list) =
    if json then
      List.iter
        (fun (p : Ts.point) ->
          print_endline
            (WJ.to_string
               (E.Obj
                  [
                    ("series", E.Str name);
                    ("res", E.Str (Ts.resolution_to_string res));
                    ("t", E.Float p.Ts.ts);
                    ("min", E.Float p.Ts.v_min);
                    ("max", E.Float p.Ts.v_max);
                    ("mean", E.Float p.Ts.v_mean);
                    ("last", E.Float p.Ts.v_last);
                    ("n", E.Int p.Ts.v_n);
                  ])))
        points
    else begin
      let lasts = List.map (fun (p : Ts.point) -> p.Ts.v_last) points in
      let mn = List.fold_left Float.min infinity lasts in
      let mx = List.fold_left Float.max neg_infinity lasts in
      (match List.rev lasts with
      | [] -> Printf.printf "%-36s (no points)\n" name
      | last :: _ ->
          Printf.printf "%-36s %4d pts  last %10.4g  min %10.4g  max %10.4g  %s\n"
            name (List.length points) last mn mx (sparkline lasts))
    end
  in
  let run host port series window res json file =
    match file with
    | Some path -> (
        (* offline: load the dump into this process's (empty) store *)
        match Ts.load path with
        | Error e -> `Error (false, path ^ ": " ^ e)
        | Ok () ->
            let names =
              match series with [] -> Ts.series_names () | l -> l
            in
            if series = [] && not json then
              List.iter print_endline names
            else
              List.iter
                (fun name ->
                  print_points ~json name res
                    (Ts.query ?window_s:window ~resolution:res name))
                names;
            `Ok ())
    | None -> (
        match Unix.inet_addr_of_string host with
        | exception Failure _ ->
            `Error (false, "not an IPv4 address: " ^ host)
        | addr -> (
            match Nepal.Server_client.connect ~addr ~port () with
            | Error e -> `Error (false, "connect: " ^ e)
            | Ok client ->
                let finish r =
                  Nepal.Server_client.close client;
                  r
                in
                if series = [] then
                  match Nepal.Server_client.series client with
                  | Error e -> finish (`Error (false, "history: " ^ e))
                  | Ok names ->
                      List.iter print_endline names;
                      finish (`Ok ())
                else
                  let rec go = function
                    | [] -> finish (`Ok ())
                    | name :: rest -> (
                        match
                          Nepal.Server_client.history ?window_s:window ~res
                            client name
                        with
                        | Error e -> finish (`Error (false, "history: " ^ e))
                        | Ok reply ->
                            print_points ~json name res
                              (Nepal.Server_client.history_points reply);
                            go rest)
                  in
                  go series))
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:"Retained telemetry history: list series names, print windowed \
             ring points (sparkline or JSON) from a live server's history \
             verb, or inspect a NEPAL_TELEM_DUMP snapshot offline."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal telemetry                      # list series";
           `P "nepal telemetry --series server.requests --window 120";
           `P "nepal telemetry --series server.query_seconds.p99 --res mid \
               --json";
           `P "nepal telemetry --file /tmp/telem.jsonl --series gc.heap_words";
         ])
    Term.(ret (const run $ host_arg $ wire_port_arg $ series_arg $ window_arg
               $ res_arg $ json_flag $ file_arg))

let top_cmd =
  let module E = Nepal.Event_log in
  let module WJ = Nepal.Wire_json in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"IPv4 address of the server.")
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval"; "n" ] ~docv:"SECS"
             ~doc:"Refresh interval in seconds.")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Print a single snapshot (no screen clearing) and exit.")
  in
  (* numeric member, Int or Float *)
  let num name j =
    match WJ.member name j with
    | Some (E.Int i) -> Some (float_of_int i)
    | Some (E.Float f) -> Some f
    | _ -> None
  in
  let num0 name j = Option.value ~default:0. (num name j) in
  let int0 name j = int_of_float (num0 name j) in
  let obj name j = Option.value ~default:(E.Obj []) (WJ.member name j) in
  let hist_line j =
    Printf.sprintf "p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  (n=%d)"
      (num0 "p50_ms" j) (num0 "p95_ms" j) (num0 "p99_ms" j) (int0 "count" j)
  in
  let render ~host ~port ~prev ~req_pts ~p99_pts snapshot =
    (* prev = (wall clock, total requests) of the previous refresh —
       the q/s fallback when the server retains no history *)
    let now = Unix.gettimeofday () in
    let requests = int0 "requests" snapshot in
    let rates = rate_series req_pts in
    let qps =
      match List.rev rates with
      | r :: _ -> r
      | [] -> (
          match prev with
          | Some (t0, r0) when now > t0 ->
              float_of_int (requests - r0) /. (now -. t0)
          | _ -> 0.)
    in
    let b = Buffer.create 1024 in
    let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    addf "nepal top — %s:%d   uptime %.1fs   proto %d\n" host port
      (num0 "uptime_s" snapshot) (int0 "proto" snapshot);
    addf "requests  %d  (%.1f q/s)   errors %d   watches %d   %s\n" requests
      qps
      (int0 "errors" snapshot) (int0 "watches" snapshot) (sparkline rates);
    addf "query     %s\n" (hist_line (obj "query_seconds" snapshot));
    (let module Ts = Nepal.Timeseries in
     let p99s = List.map (fun (p : Ts.point) -> p.Ts.v_last *. 1e3) p99_pts in
     match List.rev p99s with
     | last :: _ ->
         addf "          p99 trend %6.2fms  %s\n" last (sparkline p99s)
     | [] -> ());
    (match WJ.member "alerts" snapshot with
    | Some (E.List []) -> addf "health    ok (no active alerts)\n"
    | Some (E.List alerts) ->
        List.iter
          (fun a ->
            addf "health    DEGRADED %s  %s %s=%.4g (threshold %.4g)\n"
              (match WJ.member "rule" a with Some (E.Str s) -> s | _ -> "?")
              (match WJ.member "series" a with Some (E.Str s) -> s | _ -> "?")
              (match WJ.member "agg" a with Some (E.Str s) -> s | _ -> "?")
              (num0 "value" a) (num0 "threshold" a))
          alerts
    | _ -> ());
    let e2e = obj "alert_e2e" snapshot in
    addf "alerts    sent %d  dropped %d   e2e %s\n"
      (int0 "alerts_sent" snapshot)
      (int0 "alerts_dropped" snapshot)
      (hist_line e2e);
    let ex = obj "executor" snapshot in
    addf "executor  workers %d  queue %d   wait %s\n" (int0 "workers" ex)
      (int0 "queue_depth" ex)
      (hist_line (obj "queue_wait" ex));
    let rw = obj "rwlock" snapshot in
    addf "rwlock    readers %d  writer %s  waiters %d\n" (int0 "readers" rw)
      (match WJ.member "writer_active" rw with
      | Some (E.Bool true) -> "yes"
      | _ -> "no")
      (int0 "waiters" rw);
    addf "          read wait  %s\n" (hist_line (obj "read_wait" rw));
    addf "          write wait %s\n" (hist_line (obj "write_wait" rw));
    let cdc = obj "cdc" snapshot in
    let ev = obj "event_log" snapshot in
    addf "cdc       published %d  dropped %d   event log suppressed %d\n"
      (int0 "published" cdc) (int0 "dropped" cdc) (int0 "suppressed" ev);
    addf "\n %4s %9s %8s %7s %6s %7s %4s  %s\n" "id" "uptime" "reqs"
      "alerts" "drop" "outbox" "hw" "watches";
    (match WJ.member "sessions" snapshot with
    | Some (E.List sessions) ->
        List.iter
          (fun s ->
            let watches =
              match WJ.member "watches" s with
              | Some (E.List l) ->
                  "["
                  ^ String.concat ","
                      (List.filter_map
                         (function E.Int i -> Some (string_of_int i) | _ -> None)
                         l)
                  ^ "]"
              | _ -> "[]"
            in
            addf " %4d %8.1fs %8d %7d %6d %7d %4d  %s\n" (int0 "id" s)
              (num0 "uptime_s" s) (int0 "requests" s) (int0 "alerts_sent" s)
              (int0 "alerts_dropped" s) (int0 "outbox_len" s)
              (int0 "outbox_high_water" s) watches)
          sessions
    | _ -> ());
    ((now, requests), Buffer.contents b)
  in
  let run host port interval once =
    match Unix.inet_addr_of_string host with
    | exception Failure _ -> `Error (false, "not an IPv4 address: " ^ host)
    | addr -> (
        match Nepal.Server_client.connect ~addr ~port () with
        | Error e -> `Error (false, "connect: " ^ e)
        | Ok client ->
            let interval = Float.max 0.1 interval in
            (* ring history behind the sparklines; errors (an older
               server without the verb) degrade to the prev-delta q/s *)
            let fetch_history name =
              match
                Nepal.Server_client.history ~window_s:120. client name
              with
              | Ok reply -> Nepal.Server_client.history_points reply
              | Error _ -> []
            in
            let rec loop prev =
              match Nepal.Server_client.introspect client with
              | Error e ->
                  Nepal.Server_client.close client;
                  `Error (false, "introspect: " ^ e)
              | Ok snapshot ->
                  let req_pts = fetch_history "server.requests" in
                  let p99_pts = fetch_history "server.query_seconds.p99" in
                  let prev', body =
                    render ~host ~port ~prev ~req_pts ~p99_pts snapshot
                  in
                  if once then begin
                    print_string body;
                    flush stdout;
                    Nepal.Server_client.close client;
                    `Ok ()
                  end
                  else begin
                    (* \027[H\027[2J: cursor home + clear, like watch(1). *)
                    print_string "\027[H\027[2J";
                    print_string body;
                    Printf.printf "\n(refresh %.1fs; ctrl-c to stop)\n" interval;
                    flush stdout;
                    Unix.sleepf interval;
                    loop (Some prev')
                  end
            in
            loop None)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Self-refreshing terminal dashboard for a running nepal server: \
             q/s and p99 sparklines from retained telemetry, query latency \
             quantiles, active health alerts, alert end-to-end lag, \
             executor and lock occupancy, and a per-session table, over the \
             introspect and history wire verbs."
       ~man:
         [
           `S Manpage.s_examples;
           `P "nepal top";
           `P "nepal top -p 9642 --interval 1";
           `P "nepal top --once";
         ])
    Term.(ret (const run $ host_arg $ wire_port_arg $ interval_arg $ once_arg))

let main =
  Cmd.group
    (Cmd.info "nepal" ~version:"1.0.0"
       ~doc:"Nepal — a graph database for a virtualized network infrastructure.")
    [ schema_cmd; generate_cmd; query_cmd; explain_cmd; check_cmd; repl_cmd;
      paths_cmd; when_exists_cmd; watch_cmd; stats_cmd; serve_cmd; client_cmd;
      bench_cmd; serve_metrics_cmd; events_cmd; top_cmd; telemetry_cmd ]

let () = exit (Cmd.eval main)

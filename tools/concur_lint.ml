(* Concurrency linter driver (see tools/lint/ for the analysis).

   Usage: concur_lint [--json] [--gate] DIR...

   Parses every .ml under the given roots, runs the LNT rules, applies
   the frozen-grandfather list, and reports what remains — as
   grep-able "file:line:col: [LNTnnn] (func) message" lines on stderr,
   or with --json as one JSON report object on stdout (shape-compatible
   with the strict Nepal_server.Json parser). Exit 1 on violations.

   --gate additionally errors on stale freeze entries (a frozen
   violation that no longer exists must be deleted from
   tools/lint/lint_config.ml) and prints the distinct banner the
   runtest alias greps for. *)

let usage () =
  prerr_endline "usage: concur_lint [--json] [--gate] DIR...";
  exit 2

let () =
  let json = ref false and gate = ref false and roots = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--gate" -> gate := true
        | _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
        | _ -> roots := arg :: !roots)
    Sys.argv;
  if !roots = [] then usage ();
  let diags =
    Nepal_lint.Lint_rules.run_roots
      ~on_parse_error:(fun path err ->
        Printf.eprintf "concur_lint: warning: %s: parse failed (%s)\n" path err)
      (List.rev !roots)
  in
  let kept, frozen, stale = Nepal_lint.Lint_rules.apply_freezes diags in
  if !json then
    print_endline (Nepal_lint.Lint_diag.report_to_string ~frozen kept)
  else
    List.iter
      (fun d -> prerr_endline (Nepal_lint.Lint_diag.to_string d))
      kept;
  let stale_failures =
    if !gate then begin
      List.iter
        (fun (fz : Nepal_lint.Lint_config.freeze) ->
          Printf.eprintf
            "concur_lint: stale freeze: %s %s%s matches nothing — delete it \
             from tools/lint/lint_config.ml\n"
            fz.Nepal_lint.Lint_config.fz_code fz.Nepal_lint.Lint_config.fz_module
            (match fz.Nepal_lint.Lint_config.fz_func with
            | Some f -> "." ^ f
            | None -> ""))
        stale;
      List.length stale
    end
    else 0
  in
  if kept <> [] || stale_failures > 0 then begin
    if !gate then
      Printf.eprintf
        "===== concur_lint: concurrency gate FAILED (%d violation(s), %d \
         stale freeze(s); %d frozen) =====\n"
        (List.length kept) stale_failures frozen
    else
      Printf.eprintf "concur_lint: %d violation(s) (%d frozen)\n"
        (List.length kept) frozen;
    exit 1
  end

(* Policy tables for the concurrency linter: which resolved call paths
   are lock gates, blocking primitives, or store mutations; which
   modules implement the locking primitives themselves (and so are
   exempt from LNT003 — Mutex.lock and Condition.wait are their
   trade); which modules are covered by the shared-state rule; the
   explicit LNT003 allowlist for interactive CLI paths and tools/
   binaries; and the frozen-grandfather list.

   Freeze discipline: an entry names (code, module, function) plus a
   rationale and suppresses matching diagnostics. The list is FROZEN —
   new code fixes its violations instead of adding entries — and it is
   self-cleaning: under [--gate] an entry that matches nothing is
   itself an error, so stale entries cannot linger after the code they
   excused is fixed. *)

(* -- call-path classification ----------------------------------------- *)

(* Matched against the *suffix* of an alias-expanded call path, so
   [Rwlock.read], [Nepal_util.Rwlock.read] and a [module R = Rwlock]
   alias all classify identically. *)

type gate =
  | G_read  (* Rwlock.read closure: shared store lock held inside *)
  | G_write (* Rwlock.write / with_write closure: exclusive lock held *)
  | G_mutex (* with_lock / locked / with_state closure: a Mutex held *)
  | G_task  (* Executor.run closure: runs on a worker domain, but the
               caller blocks until it finishes — locks the caller holds
               stay held for deadlock purposes *)
  | G_async (* Thread.create / Domain.spawn / Executor.submit closure:
               runs later on another thread; the spawner's locks are
               NOT held inside *)

let gate_of_path path =
  match List.rev path with
  | "read" :: "Rwlock" :: _ -> Some G_read
  | "write" :: "Rwlock" :: _ -> Some G_write
  | "with_write" :: _ -> Some G_write
  | "with_lock" :: _ | "locked" :: _ | "with_state" :: _ -> Some G_mutex
  | "run" :: "Executor" :: _ -> Some G_task
  | "submit" :: "Executor" :: _ -> Some G_async
  | "create" :: "Thread" :: _ | "spawn" :: "Domain" :: _ -> Some G_async
  | _ -> None

(* Acquisition primitives for LNT002: entering one of these while the
   Rwlock is already held on the same thread deadlocks under writer
   preference (a waiting writer blocks the new reader; the writer in
   turn waits for the held read section to exit). *)
let rwlock_acquire_path path =
  match List.rev path with
  | "read" :: "Rwlock" :: _ | "write" :: "Rwlock" :: _ -> true
  | "with_write" :: _ -> true
  | _ -> false

(* Blocking primitives for LNT003: calls that can park the calling
   thread for an unbounded time (socket I/O, sleeps, joins, lock
   acquisition, condition waits, and Executor.run, which blocks the
   caller until a worker domain has run the task). *)
let blocking_path path =
  match List.rev path with
  | ("sleep" | "sleepf" | "read" | "write" | "single_write" | "connect"
    | "accept" | "select" | "recv" | "send")
    :: "Unix" :: _ ->
      true
  | ("delay" | "join") :: "Thread" :: _ -> true
  | "join" :: "Domain" :: _ -> true
  | "lock" :: "Mutex" :: _ -> true
  | "wait" :: "Condition" :: _ -> true
  | "run" :: "Executor" :: _ -> true
  | _ -> false

(* Graph_store mutation primitives for LNT001: reaching one of these
   without passing through Server.with_write / Rwlock.write means a
   store mutation can race concurrent readers. *)
let store_mutation_path path =
  match List.rev path with
  | ("insert_node" | "insert_edge" | "update" | "delete" | "create_index")
    :: "Graph_store" :: _ ->
      true
  | _ -> false

(* Callees treated as non-blocking despite taking internal mutexes, and
   through which may-block does NOT propagate. Every entry carries its
   justification; matched as a path suffix ([module] or
   [module; func]). *)
let non_blocking_overrides =
  [
    ([ "Metrics" ], "bounded critical sections, no condition waits");
    ([ "Env" ], "bounded critical sections, no condition waits");
    ([ "Event_log" ], "bounded critical sections; sink writes are local file I/O");
    ( [ "Timeseries" ],
      "bounded critical sections over in-memory rings; dump/load file I/O \
       happens outside the lock" );
    ([ "Health" ], "bounded critical sections over per-rule debounce state");
    ([ "Prng" ], "pure state update");
    ([ "Graph_store" ], "CDC ring drops at capacity instead of blocking");
    ( [ "Domain_pool"; "run" ],
      "fork-join over CPU-bound walk tasks; joins bounded compute, not \
       external events" );
  ]

let is_non_blocking_override path =
  let rev = List.rev path in
  List.exists
    (fun (entry, _) ->
      match entry with
      | [ m ] -> List.mem m path (* any call into that module *)
      | _ ->
          let rs = List.rev entry in
          let rec is_prefix a b =
            match (a, b) with
            | [], _ -> true
            | x :: a', y :: b' -> x = y && is_prefix a' b'
            | _ -> false
          in
          is_prefix rs rev)
    non_blocking_overrides

(* -- scopes ------------------------------------------------------------ *)

(* LNT001 is scoped to the server stack: the directories whose code
   runs concurrently against the shared store and must route mutations
   through the write lock. Loaders and the CLI mutate stores they
   privately own before publishing them. *)
let lnt001_dirs = [ "lib/server/"; "lib/monitor/" ]

(* Modules whose values are shared across threads/domains: every
   [mutable] record field and top-level [ref] in them must be
   [Atomic.t] or carry a [@guarded_by "..."] annotation naming the
   lock (or single-owner discipline) that protects it. Modules that
   spawn threads/domains are included automatically; this list adds
   the ones that are shared without spawning anything themselves. *)
let shared_state_modules =
  [
    "Server"; "Outbox"; "Client"; "Http_metrics"; "Monitor"; "Rwlock";
    "Domain_pool"; "Metrics"; "Env"; "Event_log"; "Graph_store";
    "Timeseries"; "Health";
  ]

(* Modules that implement the locking/queueing primitives: direct
   Mutex.lock / Condition.wait is their job, so LNT003 does not apply
   inside them — it applies to their callers. *)
let lock_impl_modules =
  [
    "Rwlock"; "Outbox"; "Domain_pool"; "Metrics"; "Env"; "Event_log";
    "Timeseries"; "Health";
  ]

(* The polymorphic-comparison rules keep their original scope: the hot
   query layers, where a sneaky structural compare on paths or values
   is both a correctness and a performance bug. *)
let poly_compare_dirs = [ "lib/query/"; "lib/rpe/" ]

(* -- LNT003 allowlist -------------------------------------------------- *)

(* Interactive CLI paths and tools/ binaries block on purpose —
   [stats --watch] and [nepal top] sleep between refreshes, the bench
   driver paces with sleeps. They are excluded from LNT003 by explicit
   module-level entries rather than by skipping their files, so any
   future lib/ code moved into these directories stays covered unless
   it is deliberately listed here. *)
let lnt003_allowlist =
  [
    ( "Nepal_cli",
      "interactive CLI: watch/top/stats refresh loops and bench pacing \
       sleep by design; no shared lock is held across them" );
    ("Main", "bench driver: closed-loop pacing sleeps are the workload");
    ("Profile", "profiling harness: blocking is the thing being measured");
    ("Style_check", "build-time tool, single-threaded file walker");
    ("Concur_lint", "build-time tool, single-threaded analyzer");
  ]

let lnt003_allowed modname = List.mem_assoc modname lnt003_allowlist

(* -- frozen grandfather list ------------------------------------------- *)

type freeze = {
  fz_code : string;
  fz_module : string;        (* file module name, e.g. "Server" *)
  fz_func : string option;   (* None = anywhere in the module *)
  fz_reason : string;
}

(* FROZEN. Do not add entries for new code — fix the violation. Each
   entry documents why the pre-existing site is deliberate. *)
let frozen =
  [
    (* LNT003: the query path evaluates under the read lock *inside*
       executor tasks by design — that is what spreads per-session
       evaluation across worker domains while the store stays
       mutation-consistent. The block is bounded by writer hold times,
       which E14 keeps under observation via rwlock.*_wait_seconds. *)
    {
      fz_code = "LNT003";
      fz_module = "Server";
      fz_func = Some "handle_query";
      fz_reason =
        "executor tasks acquire the store read lock by design; bounded by \
         writer hold times (rwlock.write_wait histograms)";
    };
    (* LNT003: the documented lock hierarchy is mon_lock before rw —
       both sites below take them in that order and nothing takes them
       in the other, so the nested acquisition cannot deadlock. *)
    {
      fz_code = "LNT003";
      fz_module = "Server";
      fz_func = Some "handle_watch";
      fz_reason =
        "lock hierarchy mon_lock \xe2\x89\xba rw, acquired in order everywhere \
         (DESIGN.md \xc2\xa714)";
    };
    {
      fz_code = "LNT003";
      fz_module = "Server";
      fz_func = Some "pump_loop";
      fz_reason =
        "lock hierarchy mon_lock \xe2\x89\xba rw, acquired in order everywhere \
         (DESIGN.md \xc2\xa714)";
    };
    (* LNT003: the client's serialization lock IS the request pipeline:
       one outstanding exchange per connection, blocking on the socket
       under it is the documented contract. *)
    {
      fz_code = "LNT003";
      fz_module = "Client";
      fz_func = None;
      fz_reason =
        "per-connection serialization lock: blocking socket I/O under it is \
         the one-outstanding-request contract";
    };
    (* LNT011 (migrated from tools/style_check.ml, list frozen there
       since PR 4): pre-rule polymorphic [compare] on float sort keys. *)
    {
      fz_code = "LNT011";
      fz_module = "Trace";
      fz_func = None;
      fz_reason = "pre-rule polymorphic compare on float sort keys";
    };
    {
      fz_code = "LNT011";
      fz_module = "Stat_statements";
      fz_func = None;
      fz_reason = "pre-rule polymorphic compare on float sort keys";
    };
    (* LNT013 (migrated): pre-rule List.nth call sites over short,
       bounded lists. *)
    {
      fz_code = "LNT013";
      fz_module = "Schema";
      fz_func = None;
      fz_reason = "pre-rule List.nth over short bounded lists";
    };
    {
      fz_code = "LNT013";
      fz_module = "Prng";
      fz_func = None;
      fz_reason = "pre-rule List.nth over short bounded lists";
    };
    {
      fz_code = "LNT013";
      fz_module = "Path";
      fz_func = None;
      fz_reason = "pre-rule List.nth over short bounded lists";
    };
    {
      fz_code = "LNT013";
      fz_module = "Gremlin_backend";
      fz_func = None;
      fz_reason = "pre-rule List.nth over short bounded lists";
    };
    {
      fz_code = "LNT013";
      fz_module = "Virt_service";
      fz_func = None;
      fz_reason = "pre-rule List.nth over short bounded lists";
    };
  ]

(* Span-carrying diagnostics for the concurrency linter — the LNT
   analogue of lib/analysis's NPL diagnostics, but anchored to OCaml
   source locations rather than query text. Rendered either as
   grep-able text ("file:line:col: [LNT003] (Module.func) message") or
   as one JSON object per diagnostic through the same
   [Nepal_util.Event_log.json] value type the wire protocol uses, so
   [concur_lint --json] round-trips through the strict
   [Nepal_server.Json] parser by construction. *)

module J = Nepal_util.Event_log

type t = {
  code : string;  (* "LNT001" .. — stable, documented in DESIGN.md §14 *)
  file : string;  (* path as given to the analyzer *)
  line : int;     (* 1-based *)
  col : int;      (* 0-based, matching compiler convention *)
  func : string;  (* enclosing "Module.func", or "" at module level *)
  message : string;
}

let make ~code ~file ~line ~col ~func message =
  { code; file; line; col; func; message }

let compare_by_pos a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else String.compare a.code b.code

let to_string d =
  let where = if d.func = "" then "" else Printf.sprintf " (%s)" d.func in
  Printf.sprintf "%s:%d:%d: [%s]%s %s" d.file d.line d.col d.code where
    d.message

let to_json d =
  J.Obj
    [
      ("code", J.Str d.code);
      ("file", J.Str d.file);
      ("line", J.Int d.line);
      ("col", J.Int d.col);
      ("function", J.Str d.func);
      ("message", J.Str d.message);
    ]

(* The whole report as one JSON object: counts first, then the
   diagnostics sorted by position (deterministic output for golden
   tests and CI diffing). *)
let report_json ~frozen diags =
  J.Obj
    [
      ("tool", J.Str "concur_lint");
      ("violations", J.Int (List.length diags));
      ("frozen", J.Int frozen);
      ( "diagnostics",
        J.List (List.map to_json (List.sort compare_by_pos diags)) );
    ]

let report_to_string ~frozen diags =
  J.json_to_string (report_json ~frozen diags)

(* The analysis proper: build a cross-file function table from the
   extracted facts, compute three over-approximated reachability
   fixpoints over the call graph (can-mutate-the-store, can-acquire-the
   -rwlock, may-block) plus a forward runs-on-a-thread set, then
   evaluate each LNT rule against the call sites with their lexical
   gate contexts. Finally apply the frozen-grandfather list.

   Diagnostic codes (documented in DESIGN.md §14):
     LNT001  store mutation reachable outside the write lock
     LNT002  nested/re-entrant Rwlock acquisition (writer-preference deadlock)
     LNT003  blocking call while a lock is held or inside an executor task
     LNT004  unguarded mutable state in a thread-shared module
     LNT005  catch-all exception handler in thread-borne code
     LNT010  Obj.magic (migrated from style_check)
     LNT011  polymorphic compare in the query layers (migrated)
     LNT012  polymorphic equality against Value.Null (migrated)
     LNT013  List.nth linear indexing outside tests (migrated) *)

module C = Lint_config
module A = Lint_ast

type t = {
  files : A.file list;
  table : (string, A.func) Hashtbl.t; (* qualified name -> funcs (multi) *)
  all_funcs : (A.func * A.file) list;
}

let build files =
  let table = Hashtbl.create 256 in
  let all =
    List.concat_map
      (fun f -> List.map (fun fn -> (fn, f)) f.A.fl_funcs)
      files
  in
  List.iter (fun (fn, _) -> Hashtbl.add table fn.A.fn_name fn) all;
  { files; table; all_funcs = all }

(* -- callee resolution ------------------------------------------------- *)

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | x :: a', y :: b' -> x = y && is_prefix a' b'
  | _, [] -> false

let split_name name = String.split_on_char '.' name

(* Resolve a call path to candidate functions. Qualified paths match
   any table entry whose reversed component list shares a prefix with
   the reversed call path (so [Executor.run], [Domain_pool.Executor.run]
   and an aliased spelling all reach the same function). Bare names
   resolve within the calling file, including its nested modules. *)
let resolve t ~(file : A.file) path =
  match path with
  | [] -> []
  | [ f ] ->
      let prefix = file.A.fl_module ^ "." in
      let suffix = "." ^ f in
      Hashtbl.fold
        (fun key fn acc ->
          if
            String.length key > String.length prefix + String.length f - 1
            && String.sub key 0 (String.length prefix) = prefix
            && String.sub key
                 (String.length key - String.length suffix)
                 (String.length suffix)
               = suffix
          then fn :: acc
          else acc)
        t.table []
  | _ ->
      let rp = List.rev path in
      Hashtbl.fold
        (fun key fn acc ->
          let rk = List.rev (split_name key) in
          if is_prefix rp rk || is_prefix rk rp then fn :: acc else acc)
        t.table []

(* -- fixpoints --------------------------------------------------------- *)

(* Each fixpoint marks function ids with a short witness string used in
   diagnostics ("via Monitor.poll"). *)

let path_str p = String.concat "." p

let fixpoint t ~seed ~edge_ok =
  let marks : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let marked fn = Hashtbl.mem marks fn.A.fn_id in
  let mark fn w = if not (marked fn) then Hashtbl.add marks fn.A.fn_id w in
  (* direct seeds *)
  List.iter
    (fun (fn, _) ->
      List.iter
        (fun c -> match seed c with Some w -> mark fn w | None -> ())
        fn.A.fn_calls)
    t.all_funcs;
  (* propagate along resolvable edges *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fn, file) ->
        if not (marked fn) then
          List.iter
            (fun c ->
              if (not (marked fn)) && edge_ok c then
                match List.find_opt marked (resolve t ~file c.A.c_path) with
                | Some g ->
                    mark fn
                      (Printf.sprintf "via %s" g.A.fn_name);
                    changed := true
                | None -> ())
            fn.A.fn_calls)
      t.all_funcs
  done;
  marks

let in_ctx g c = List.mem g c.A.c_ctx
let async_ctx c = in_ctx C.G_async c

let mutates t =
  fixpoint t
    ~seed:(fun c ->
      if C.store_mutation_path c.A.c_path && not (in_ctx C.G_write c) then
        Some (path_str c.A.c_path)
      else None)
    ~edge_ok:(fun c -> not (in_ctx C.G_write c))

let acquires t =
  fixpoint t
    ~seed:(fun c ->
      if C.rwlock_acquire_path c.A.c_path then Some (path_str c.A.c_path)
      else None)
    ~edge_ok:(fun c -> not (async_ctx c))

let blocks t =
  fixpoint t
    ~seed:(fun c ->
      if C.blocking_path c.A.c_path && not (C.is_non_blocking_override c.A.c_path)
      then Some (path_str c.A.c_path)
      else None)
    ~edge_ok:(fun c ->
      (not (async_ctx c)) && not (C.is_non_blocking_override c.A.c_path))

(* Forward set: functions that run on a spawned thread/domain — seeded
   by calls made inside async closures, closed under outgoing calls. *)
let threaded t =
  let marks : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let marked fn = Hashtbl.mem marks fn.A.fn_id in
  let changed = ref true in
  List.iter
    (fun (fn, file) ->
      List.iter
        (fun c ->
          if async_ctx c then
            List.iter
              (fun g -> if not (marked g) then Hashtbl.add marks g.A.fn_id ())
              (resolve t ~file c.A.c_path))
        fn.A.fn_calls)
    t.all_funcs;
  while !changed do
    changed := false;
    List.iter
      (fun (fn, file) ->
        if marked fn then
          List.iter
            (fun c ->
              List.iter
                (fun g ->
                  if not (marked g) then begin
                    Hashtbl.add marks g.A.fn_id ();
                    changed := true
                  end)
                (resolve t ~file c.A.c_path))
            fn.A.fn_calls)
      t.all_funcs
  done;
  marked

(* -- scoping helpers --------------------------------------------------- *)

let has_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let in_dirs dirs path = List.exists (has_substring path) dirs
let in_test path = in_dirs [ "test/" ] path
let module_of_func fn =
  match split_name fn.A.fn_name with m :: _ -> m | [] -> fn.A.fn_name

(* -- rule evaluation --------------------------------------------------- *)

let run files =
  let t = build files in
  let mut = mutates t and acq = acquires t and blk = blocks t in
  let is_threaded = threaded t in
  let witness marks fn = Hashtbl.find_opt marks fn.A.fn_id in
  let diags = ref [] in
  let emit ~code ~file ~line ~col ~func msg =
    diags := Lint_diag.make ~code ~file ~line ~col ~func msg :: !diags
  in
  List.iter
    (fun (fn, file) ->
      let path = file.A.fl_path in
      let m = module_of_func fn in
      let emit_at ~code (line, col) msg =
        emit ~code ~file:path ~line ~col ~func:fn.A.fn_name msg
      in
      let resolved_witness marks c =
        List.find_map (witness marks) (resolve t ~file c.A.c_path)
      in
      List.iter
        (fun (c : A.call) ->
          let at = (c.A.c_line, c.A.c_col) in
          let cs = path_str c.A.c_path in
          (* LNT001: ungated path to a store mutation, server stack only *)
          (if in_dirs C.lnt001_dirs path && not (in_ctx C.G_write c) then
             if C.store_mutation_path c.A.c_path then
               emit_at ~code:"LNT001" at
                 (Printf.sprintf
                    "store mutation %s outside Server.with_write/Rwlock.write"
                    cs)
             else
               match resolved_witness mut c with
               | Some w ->
                   emit_at ~code:"LNT001" at
                     (Printf.sprintf
                        "call %s can reach a store mutation (%s) without the \
                         write lock"
                        cs w)
               | None -> ());
          (* LNT002: acquiring the Rwlock while it is already held *)
          (if
             (not (in_test path))
             && (in_ctx C.G_read c || in_ctx C.G_write c)
           then
             if C.rwlock_acquire_path c.A.c_path then
               emit_at ~code:"LNT002" at
                 (Printf.sprintf
                    "%s inside a held Rwlock section: deadlock under writer \
                     preference"
                    cs)
             else
               match resolved_witness acq c with
               | Some w ->
                   emit_at ~code:"LNT002" at
                     (Printf.sprintf
                        "call %s re-acquires the Rwlock (%s) inside a held \
                         section: deadlock under writer preference"
                        cs w)
               | None -> ());
          (* LNT003: blocking while a lock is held / inside executor tasks *)
          (if
             (not (in_test path))
             && (not (List.mem m C.lock_impl_modules))
             && not (C.lnt003_allowed m)
           then
             let lexical_held =
               in_ctx C.G_read c || in_ctx C.G_write c || in_ctx C.G_mutex c
               || in_ctx C.G_task c
             in
             let is_mutex_lock =
               match List.rev c.A.c_path with
               | "lock" :: "Mutex" :: _ -> true
               | _ -> false
             in
             let mutex_held =
               (* a direct Mutex.lock earlier in this function: treat
                  later call sites as under that mutex (the
                  [Mutex.lock l; Fun.protect ...] idiom), except on
                  fresh async closures. Direct Mutex.lock sites are
                  exempt from this heuristic — sequential
                  lock/unlock/lock sections in one function are fine;
                  only a lock taken inside a *gate closure* counts. *)
               match fn.A.fn_lock_line with
               | Some l ->
                   (not (async_ctx c)) && (not is_mutex_lock) && c.A.c_line >= l
               | None -> false
             in
             if lexical_held || mutex_held then
               if
                 C.blocking_path c.A.c_path
                 && not (C.is_non_blocking_override c.A.c_path)
               then
                 emit_at ~code:"LNT003" at
                   (Printf.sprintf
                      "blocking call %s while a lock is held or inside an \
                       executor task"
                      cs)
               else if not (C.is_non_blocking_override c.A.c_path) then
                 match resolved_witness blk c with
                 | Some w ->
                     emit_at ~code:"LNT003" at
                       (Printf.sprintf
                          "call %s may block (%s) while a lock is held or \
                           inside an executor task"
                          cs w)
                 | None -> ());
          (* LNT010: Obj.magic, anywhere *)
          (match List.rev c.A.c_path with
          | "magic" :: "Obj" :: _ ->
              emit_at ~code:"LNT010" at "Obj.magic is forbidden"
          | _ -> ());
          (* LNT011: bare polymorphic compare in the query layers; a
             module-local monomorphic [compare] definition opts out *)
          (if
             c.A.c_path = [ "compare" ]
             && in_dirs C.poly_compare_dirs path
             && not (Hashtbl.mem t.table (file.A.fl_module ^ ".compare"))
           then
             emit_at ~code:"LNT011" at
               "polymorphic compare in the query layer (use Float.compare / \
                String.compare / a dedicated M.compare)");
          (* LNT013: linear list indexing outside tests *)
          match List.rev c.A.c_path with
          | ("nth" | "nth_opt") :: "List" :: _ when not (in_test path) ->
              emit_at ~code:"LNT013" at
                (Printf.sprintf
                   "%s in non-test code (index an array or pattern-match)" cs)
          | _ -> ())
        fn.A.fn_calls;
      (* LNT005: catch-alls in thread-borne code *)
      if not (in_test path) then begin
        let fn_threaded = fn.A.fn_spawns || is_threaded fn in
        List.iter
          (fun (ca : A.catch_all) ->
            if fn_threaded || List.mem C.G_async ca.A.ca_ctx then
              emit ~code:"LNT005" ~file:path ~line:ca.A.ca_line
                ~col:ca.A.ca_col ~func:fn.A.fn_name
                "catch-all exception handler in thread-borne code swallows \
                 errors (match specific exceptions or record the failure)")
          fn.A.fn_catch_alls;
        (* LNT012: polymorphic equality against Null *)
        if in_dirs C.poly_compare_dirs path then
          List.iter
            (fun (line, col) ->
              emit ~code:"LNT012" ~file:path ~line ~col ~func:fn.A.fn_name
                "polymorphic equality against Value.Null (use Value.equal)")
            fn.A.fn_null_eqs
      end)
    t.all_funcs;
  (* LNT004: unguarded mutable state in thread-shared modules *)
  List.iter
    (fun (file : A.file) ->
      if
        (not (in_test file.A.fl_path))
        && (file.A.fl_spawns
           || List.mem file.A.fl_module C.shared_state_modules)
      then
        List.iter
          (fun (md : A.mutable_decl) ->
            if not (md.A.md_guarded || md.A.md_atomic) then
              emit ~code:"LNT004" ~file:file.A.fl_path ~line:md.A.md_line
                ~col:md.A.md_col ~func:file.A.fl_module
                (Printf.sprintf
                   "mutable %s in a thread-shared module is neither Atomic.t \
                    nor [@guarded_by \"...\"]-annotated"
                   md.A.md_name))
          file.A.fl_mutables)
    t.files;
  List.sort Lint_diag.compare_by_pos !diags

(* -- freezes ----------------------------------------------------------- *)

(* Split [kept] diagnostics from frozen ones; also return the freeze
   entries that matched nothing (staleness errors under --gate). *)
let apply_freezes diags =
  let used = Hashtbl.create 16 in
  let fz_key (fz : C.freeze) =
    (fz.C.fz_code, fz.C.fz_module, fz.C.fz_func)
  in
  let matches (fz : C.freeze) (d : Lint_diag.t) =
    fz.C.fz_code = d.Lint_diag.code
    &&
    let parts = split_name d.Lint_diag.func in
    match parts with
    | m :: rest ->
        m = fz.C.fz_module
        && (match fz.C.fz_func with
           | None -> true
           | Some f -> String.concat "." rest = f)
    | [] -> false
  in
  let kept, frozen =
    List.partition
      (fun d ->
        match List.find_opt (fun fz -> matches fz d) C.frozen with
        | Some fz ->
            Hashtbl.replace used (fz_key fz) ();
            false
        | None -> true)
      diags
  in
  let stale =
    List.filter (fun fz -> not (Hashtbl.mem used (fz_key fz))) C.frozen
  in
  (kept, List.length frozen, stale)

(* -- file walking ------------------------------------------------------ *)

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
        then acc
        else walk acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect_files roots = List.sort compare (List.fold_left walk [] roots)

(* Parse + analyze a set of roots; syntax failures are reported via
   [on_parse_error] and the file skipped. *)
let run_roots ~on_parse_error roots =
  let files =
    List.filter_map
      (fun p ->
        match Lint_ast.load p with
        | f -> Some f
        | exception e ->
            on_parse_error p (Printexc.to_string e);
            None)
      (collect_files roots)
  in
  run files

(* Parsetree extraction: one pass per file collecting everything the
   rules need — a per-function list of call/use sites with the lexical
   gate context they occur under (which Rwlock/Mutex/Executor closures
   enclose them), catch-all exception handlers, mutable record fields
   and top-level refs with their [@guarded_by]/Atomic status, and
   polymorphic-equality-against-Null sites.

   Context model: entering a gate closure pushes a frame. [G_async]
   frames RESET the stack (a Thread.create/Domain.spawn closure runs
   later, on another thread, without the spawner's locks); [G_task]
   frames PUSH (Executor.run is synchronous — the caller blocks with
   its locks held until the worker finishes). Functions passed to a
   gate by name instead of as a literal [fun] are recorded as
   pseudo-calls carrying the pushed context, so [Thread.create
   (pump_loop t) ()] still marks [pump_loop] as thread-borne.

   Everything here is an over-approximation: unknown callees (function
   arguments, stdlib) contribute no edges, and a lambda not passed to
   any gate keeps the enclosing context. *)

open Parsetree

type call = {
  c_path : string list; (* alias-expanded callee path, e.g. ["Rwlock";"read"] *)
  c_ctx : Lint_config.gate list; (* innermost frame first *)
  c_line : int;
  c_col : int;
}

type catch_all = {
  ca_ctx : Lint_config.gate list;
  ca_line : int;
  ca_col : int;
}

type mutable_decl = {
  md_name : string;
  md_line : int;
  md_col : int;
  md_guarded : bool; (* carries a [@guarded_by "..."] annotation *)
  md_atomic : bool;  (* declared as _ Atomic.t *)
}

type func = {
  fn_id : int; (* unique across the run, for fixpoint marking *)
  fn_name : string; (* qualified: "Module[.Sub].name" *)
  fn_line : int;
  fn_col : int;
  mutable fn_calls : call list;
  mutable fn_catch_alls : catch_all list;
  mutable fn_null_eqs : (int * int) list; (* =/<> against a Null constructor *)
  mutable fn_lock_line : int option; (* first direct Mutex.lock call *)
  mutable fn_spawns : bool; (* contains a Thread.create/Domain.spawn site *)
}

type file = {
  fl_path : string;
  fl_module : string; (* capitalized basename, e.g. "Server" *)
  mutable fl_funcs : func list;
  mutable fl_mutables : mutable_decl list;
  mutable fl_spawns : bool;
}

let module_of_path path = String.capitalize_ascii Filename.(remove_extension (basename path))

let next_id =
  let n = ref 0 in
  fun () -> incr n; !n

(* -- helpers ----------------------------------------------------------- *)

(* Longident.flatten raises on functor applications; we only care about
   the head path of those. *)
let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (l, _) -> flatten l

let pos_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let is_guarded attrs =
  List.exists (fun a -> a.attr_name.Location.txt = "guarded_by") attrs

let rec is_fun e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, b) | Pexp_constraint (b, _) -> is_fun b
  | _ -> false

let rec unconstrain e =
  match e.pexp_desc with Pexp_constraint (b, _) -> unconstrain b | _ -> e

let rec pat_name p =
  match p.ppat_desc with
  | Ppat_var v -> Some v.Location.txt
  | Ppat_constraint (p, _) -> pat_name p
  | _ -> None

let is_catch_all_pat p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_var v -> String.length v.Location.txt > 0 && v.Location.txt.[0] = '_'
  | _ -> false

(* -- extraction state -------------------------------------------------- *)

type state = {
  file : file;
  aliases : (string, string list) Hashtbl.t; (* module X = Y aliasing *)
  mutable mod_path : string list; (* innermost first, within the file *)
  mutable cur : func;
  mutable ctx : Lint_config.gate list;
}

let resolve_alias st path =
  match path with
  | head :: tl when Hashtbl.mem st.aliases head -> Hashtbl.find st.aliases head @ tl
  | _ -> path

let push_gate st g =
  match g with Lint_config.G_async -> [ Lint_config.G_async ] | _ -> g :: st.ctx

let record_call ?ctx st path loc =
  let c_ctx = match ctx with Some c -> c | None -> st.ctx in
  let line, col = pos_of loc in
  st.cur.fn_calls <- { c_path = path; c_ctx; c_line = line; c_col = col } :: st.cur.fn_calls;
  (match List.rev path with
  | "lock" :: "Mutex" :: _ ->
      if st.cur.fn_lock_line = None then st.cur.fn_lock_line <- Some line
  | _ -> ())

(* -- the traversal ----------------------------------------------------- *)

let rec visit_expr st e =
  match e.pexp_desc with
  | Pexp_ident lid -> record_call st (resolve_alias st (flatten lid.Location.txt)) lid.Location.loc
  | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) ->
      let path = resolve_alias st (flatten lid.Location.txt) in
      record_call st path lid.Location.loc;
      (match (path, args) with
      | [ ("=" | "<>" | "==") ], _
        when List.exists
               (fun (_, a) ->
                 match (unconstrain a).pexp_desc with
                 | Pexp_construct (c, _) ->
                     (match List.rev (flatten c.Location.txt) with
                     | "Null" :: _ -> true
                     | _ -> false)
                 | _ -> false)
               args ->
          st.cur.fn_null_eqs <- pos_of lid.Location.loc :: st.cur.fn_null_eqs
      | _ -> ());
      (match Lint_config.gate_of_path path with
      | None -> List.iter (fun (_, a) -> visit_expr st a) args
      | Some g ->
          if g = Lint_config.G_async then begin
            st.cur.fn_spawns <- true;
            st.file.fl_spawns <- true
          end;
          let inner = push_gate st g in
          List.iter
            (fun (_, a) ->
              if is_fun a then with_ctx st inner (fun () -> visit_expr st a)
              else
                match a.pexp_desc with
                | Pexp_ident l2 ->
                    record_call ~ctx:inner st
                      (resolve_alias st (flatten l2.Location.txt))
                      l2.Location.loc
                | Pexp_apply ({ pexp_desc = Pexp_ident l2; _ }, inner_args) ->
                    (* partial application passed to the gate: the
                       resulting closure runs under the gate; its own
                       arguments are evaluated here and now *)
                    record_call ~ctx:inner st
                      (resolve_alias st (flatten l2.Location.txt))
                      l2.Location.loc;
                    List.iter (fun (_, b) -> visit_expr st b) inner_args
                | _ -> visit_expr st a)
            args)
  | Pexp_try (body, cases) ->
      visit_expr st body;
      List.iter
        (fun c ->
          (if c.pc_guard = None && is_catch_all_pat c.pc_lhs then
             let line, col = pos_of c.pc_lhs.ppat_loc in
             st.cur.fn_catch_alls <-
               { ca_ctx = st.ctx; ca_line = line; ca_col = col }
               :: st.cur.fn_catch_alls);
          Option.iter (visit_expr st) c.pc_guard;
          visit_expr st c.pc_rhs)
        cases
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> visit_expr st vb.pvb_expr) vbs;
      visit_expr st body
  | Pexp_fun (_, default, _, body) ->
      Option.iter (visit_expr st) default;
      visit_expr st body
  | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (visit_expr st) c.pc_guard;
          visit_expr st c.pc_rhs)
        cases
  | Pexp_match (scrut, cases) ->
      visit_expr st scrut;
      List.iter
        (fun c ->
          Option.iter (visit_expr st) c.pc_guard;
          visit_expr st c.pc_rhs)
        cases
  | Pexp_apply (f, args) ->
      visit_expr st f;
      List.iter (fun (_, a) -> visit_expr st a) args
  | Pexp_sequence (a, b) | Pexp_while (a, b) ->
      visit_expr st a;
      visit_expr st b
  | Pexp_ifthenelse (c, t, e') ->
      visit_expr st c;
      visit_expr st t;
      Option.iter (visit_expr st) e'
  | Pexp_for (_, lo, hi, _, body) ->
      visit_expr st lo;
      visit_expr st hi;
      visit_expr st body
  | Pexp_tuple es | Pexp_array es -> List.iter (visit_expr st) es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> Option.iter (visit_expr st) arg
  | Pexp_record (fields, base) ->
      List.iter (fun (_, v) -> visit_expr st v) fields;
      Option.iter (visit_expr st) base
  | Pexp_field (a, _) -> visit_expr st a
  | Pexp_setfield (a, _, b) ->
      visit_expr st a;
      visit_expr st b
  | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) -> visit_expr st a
  | Pexp_lazy a | Pexp_assert a | Pexp_newtype (_, a) | Pexp_open (_, a) ->
      visit_expr st a
  | Pexp_letmodule (name, me, body) ->
      visit_module_binding_parts st
        (match name.Location.txt with Some n -> n | None -> "_")
        me;
      visit_expr st body
  | Pexp_send (a, _) -> visit_expr st a
  | Pexp_letexception (_, body) -> visit_expr st body
  | Pexp_letop { let_; ands; body } ->
      visit_expr st let_.pbop_exp;
      List.iter (fun b -> visit_expr st b.pbop_exp) ands;
      visit_expr st body
  | _ -> ()

and with_ctx st ctx f =
  let old = st.ctx in
  st.ctx <- ctx;
  f ();
  st.ctx <- old

and visit_module_binding_parts st name me =
  match me.pmod_desc with
  | Pmod_ident lid ->
      Hashtbl.replace st.aliases name
        (resolve_alias st (flatten lid.Location.txt))
  | Pmod_constraint (inner, _) -> visit_module_binding_parts st name inner
  | _ ->
      st.mod_path <- name :: st.mod_path;
      visit_module_expr st me;
      st.mod_path <- (match st.mod_path with _ :: tl -> tl | [] -> [])

and visit_module_expr st me =
  match me.pmod_desc with
  | Pmod_structure items -> List.iter (visit_structure_item st) items
  | Pmod_functor (_, body) -> visit_module_expr st body
  | Pmod_constraint (inner, _) -> visit_module_expr st inner
  | Pmod_apply (a, b) ->
      visit_module_expr st a;
      visit_module_expr st b
  | _ -> ()

and visit_structure_item st si =
  match si.pstr_desc with
  | Pstr_value (_, vbs) -> List.iter (visit_top_binding st) vbs
  | Pstr_module mb ->
      visit_module_binding_parts st
        (match mb.pmb_name.Location.txt with Some n -> n | None -> "_")
        mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.iter
        (fun mb ->
          visit_module_binding_parts st
            (match mb.pmb_name.Location.txt with Some n -> n | None -> "_")
            mb.pmb_expr)
        mbs
  | Pstr_type (_, tds) -> List.iter (visit_type_decl st) tds
  | Pstr_eval (e, _) -> visit_expr st e
  | Pstr_include { pincl_mod; _ } -> visit_module_expr st pincl_mod
  | _ -> ()

and visit_top_binding st vb =
  let name = match pat_name vb.pvb_pat with Some n -> n | None -> "(init)" in
  (* top-level refs are shared-state candidates for LNT004 *)
  (match (unconstrain vb.pvb_expr).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "ref"; _ }; _ }, _)
    ->
      let guarded =
        is_guarded vb.pvb_attributes || is_guarded vb.pvb_pat.ppat_attributes
      in
      let line, col = pos_of vb.pvb_pat.ppat_loc in
      st.file.fl_mutables <-
        { md_name = name; md_line = line; md_col = col; md_guarded = guarded;
          md_atomic = false }
        :: st.file.fl_mutables
  | _ -> ());
  let qual =
    String.concat "."
      ((st.file.fl_module :: List.rev st.mod_path) @ [ name ])
  in
  let line, col = pos_of vb.pvb_loc in
  let fn =
    { fn_id = next_id (); fn_name = qual; fn_line = line; fn_col = col;
      fn_calls = []; fn_catch_alls = []; fn_null_eqs = []; fn_lock_line = None;
      fn_spawns = false }
  in
  st.file.fl_funcs <- fn :: st.file.fl_funcs;
  let old_cur = st.cur and old_ctx = st.ctx in
  st.cur <- fn;
  st.ctx <- [];
  visit_expr st vb.pvb_expr;
  st.cur <- old_cur;
  st.ctx <- old_ctx

and visit_type_decl st td =
  match td.ptype_kind with
  | Ptype_record lds ->
      List.iter
        (fun ld ->
          if ld.pld_mutable = Asttypes.Mutable then begin
            let guarded =
              is_guarded ld.pld_attributes
              || is_guarded ld.pld_type.ptyp_attributes
            in
            let atomic =
              match ld.pld_type.ptyp_desc with
              | Ptyp_constr (lid, _) -> (
                  match List.rev (flatten lid.Location.txt) with
                  | "t" :: "Atomic" :: _ -> true
                  | _ -> false)
              | _ -> false
            in
            let line, col = pos_of ld.pld_name.Location.loc in
            st.file.fl_mutables <-
              { md_name = ld.pld_name.Location.txt; md_line = line;
                md_col = col; md_guarded = guarded; md_atomic = atomic }
              :: st.file.fl_mutables
          end)
        lds
  | _ -> ()

(* -- entry points ------------------------------------------------------ *)

let parse path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

(* Parse [path] and extract its lint-relevant facts. Raises on syntax
   errors — callers decide whether that is fatal (the gate) or a
   warning (ad-hoc runs over generated trees). *)
let load path =
  let structure = parse path in
  let file =
    { fl_path = path; fl_module = module_of_path path; fl_funcs = [];
      fl_mutables = []; fl_spawns = false }
  in
  let toplevel =
    { fn_id = next_id (); fn_name = file.fl_module ^ ".(toplevel)";
      fn_line = 1; fn_col = 0; fn_calls = []; fn_catch_alls = [];
      fn_null_eqs = []; fn_lock_line = None; fn_spawns = false }
  in
  let st =
    { file; aliases = Hashtbl.create 8; mod_path = []; cur = toplevel;
      ctx = [] }
  in
  List.iter (visit_structure_item st) structure;
  file.fl_funcs <- toplevel :: file.fl_funcs;
  file

(* Source-style gate, run under `dune runtest` (ocamlformat is not
   vendored, so this enforces the cheap invariants a formatter would):
   no tab characters, no trailing whitespace, no CR line endings, a
   newline at end of file, no stdout printing from lib/, and a
   documentation header on every .mli. Walks the directories given on
   the command line and checks every .ml / .mli underneath.

   The former regex-level semantic lints (Obj.magic, polymorphic
   compare / Value.Null equality, List.nth) moved to the AST-exact
   concurrency linter as LNT010-LNT013 — see tools/concur_lint.ml and
   tools/lint/; their grandfather lists moved to
   tools/lint/lint_config.ml. *)

let violations = ref 0

let report file line msg =
  incr violations;
  Printf.eprintf "%s:%d: %s\n" file line msg

(* Library code must not print to stdout: diagnostics go through Logs
   and observability through the metrics registry / trace spans. *)
let in_lib file =
  String.length file >= 4 && String.sub file 0 4 = "lib/"

let contains_at line needle =
  let n = String.length needle and ln = String.length line in
  let rec go i = i + n <= ln && (String.sub line i n = needle || go (i + 1)) in
  go 0

let check_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  if n > 0 && contents.[n - 1] <> '\n' then
    report file 1 "missing newline at end of file";
  let line = ref 1 in
  let line_start = ref 0 in
  let check_line_text i =
    let text = String.sub contents !line_start (i - !line_start) in
    if in_lib file && contains_at text "Printf.printf" then
      report file !line
        "Printf.printf in lib/ (use Logs or the metrics/trace layer)"
  in
  String.iteri
    (fun i c ->
      match c with
      | '\t' -> report file !line "tab character"
      | '\r' -> report file !line "carriage return"
      | '\n' ->
          (if i > !line_start then
             match contents.[i - 1] with
             | ' ' | '\t' -> report file !line "trailing whitespace"
             | _ -> ());
          check_line_text i;
          incr line;
          line_start := i + 1
      | _ -> ())
    contents;
  if n > !line_start then check_line_text n

(* Every lib/ module must publish an interface. Modules that predate
   the rule are grandfathered here; do not add to this list — write the
   .mli instead. *)
let mli_grandfathered =
  [
    "backend_intf.ml"; "connect.ml"; "native_backend.ml"; "query_ast.ml";
    "explain.ml"; "domain_pool.ml"; "intmap.ml"; "intset.ml"; "strmap.ml";
    "strset.ml"; "join_cache.ml";
  ]

(* Directories added after the rule existed get no grandfathering at
   all, whatever the basename: every module ships its .mli. *)
let mli_strict_dirs = [ "lib/monitor"; "lib/server" ]

let in_strict_dir file =
  List.exists
    (fun d ->
      let d = d ^ "/" in
      let rec has_sub i =
        i + String.length d <= String.length file
        && (String.sub file i (String.length d) = d || has_sub (i + 1))
      in
      has_sub 0)
    mli_strict_dirs

let check_mli file =
  if
    in_lib file
    && Filename.check_suffix file ".ml"
    && not
         (List.mem (Filename.basename file) mli_grandfathered
         && not (in_strict_dir file))
    && not (Sys.file_exists (file ^ "i"))
  then
    report file 1
      "lib/ module without an interface (add a .mli; the grandfather \
       list in tools/style_check.ml is frozen)"

(* Every interface opens with a documentation header: skipping blank
   lines, the first token must start a [(** ... *)] comment. *)
let check_mli_header file =
  if Filename.check_suffix file ".mli" then begin
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    let i = ref 0 in
    while
      !i < n && (match contents.[!i] with ' ' | '\n' | '\r' | '\t' -> true | _ -> false)
    do
      incr i
    done;
    if not (!i + 3 <= n && String.sub contents !i 3 = "(**") then
      report file 1 "interface without a (** ... *) documentation header"
  end

let is_source file =
  Filename.check_suffix file ".ml" || Filename.check_suffix file ".mli"

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry ->
        if entry <> "_build" && not (String.length entry > 0 && entry.[0] = '.')
        then walk (Filename.concat path entry))
      (Sys.readdir path)
  else if is_source path then begin
    check_file path;
    check_mli path;
    check_mli_header path
  end

let () =
  Array.iteri (fun i arg -> if i > 0 then walk arg) Sys.argv;
  if !violations > 0 then begin
    Printf.eprintf "style check failed: %d violation(s)\n" !violations;
    exit 1
  end

(* Nepal as a data-integration platform (Sections 1 and 5): the network
   inventory is fragmented across different systems — here a relational
   database (the A&AI-style inventory) and a property-graph store — and
   one Nepal query joins pathways across both. The example also prints
   the SQL and Gremlin the retargetable translator generated for each
   target.

   Run with: dune exec examples/data_integration.exe *)

module Nepal = Core.Nepal
module Virt = Nepal.Virt_service

let ok = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

let () =
  let t = Virt.generate ~seed:7 ~vnf_count:8 ~server_count:16 () in
  let db = Nepal.of_store t.Virt.store in

  Format.printf "mirroring the inventory into both target systems...@.";
  let rb = ok (Nepal.to_relational db) in
  let gb = ok (Nepal.to_gremlin db) in
  ignore (Nepal.Relational_backend.take_log rb);
  ignore (Nepal.Gremlin_backend.take_log gb);

  (* Variable D1 (the service→hardware dependency) lives in the
     relational inventory; Phys (physical connectivity) in the graph
     store. The Nepal coordination layer evaluates each variable in its
     own database and joins the pathways itself. *)
  let q =
    "Retrieve Phys From PATHS D1, PATHS Phys \
     Where D1 MATCHES VNF(id=100)->[Vertical()]{1,6}->Server() \
     And Phys MATCHES [Connects()]{1,2} \
     And source(Phys) = target(D1)"
  in
  Format.printf "@.query> %s@." q;
  let result =
    ok
      (Nepal.query_on (Nepal.conn db)
         ~binds:
           [
             ("D1", Nepal.relational_conn rb);
             ("Phys", Nepal.gremlin_conn gb);
           ]
         q)
  in
  Format.printf "rows: %d@." (Nepal.Engine.result_count result);

  Format.printf "@.--- SQL shipped to the relational target (first 6) ---@.";
  List.iteri
    (fun k sql -> if k < 6 then Format.printf "%s;@.@." sql)
    (Nepal.Relational_backend.take_log rb);

  Format.printf "@.--- Gremlin shipped to the graph target (first 6) ---@.";
  List.iteri
    (fun k g -> if k < 6 then Format.printf "%s@." g)
    (Nepal.Gremlin_backend.take_log gb);

  (* The relational target also supports mixing graph data with plain
     relational analytics (Section 6.1): profile the VM status
     distribution straight off the class tables. *)
  Format.printf "@.--- relational profiling over the same tables ---@.";
  let dbase = Nepal.Relational_backend.database rb in
  let module R = Nepal_relational in
  let profile =
    R.Plan.Aggregate
      {
        input = R.Plan.Scan { table = "Container"; only = false };
        group_by = [ "status" ];
        aggs = [ ("n", R.Plan.Count) ];
      }
  in
  Format.printf "SQL> %s;@." (R.Plan.to_sql profile);
  let rs = R.Plan.run_exn dbase profile in
  List.iter
    (fun row ->
      Format.printf "  status %s: %s containers@."
        (Nepal.Value.to_string (R.Plan.column_value rs row "status"))
        (Nepal.Value.to_string (R.Plan.column_value rs row "n")))
    rs.R.Plan.rows

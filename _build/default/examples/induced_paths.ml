(* Induced-path calculation over the full layered model (Section 2.3.2):
   a data flow known at the Service layer (VNF -> VNF) is mapped to the
   Physical layer by (a) computing each VNF's physical footprint along
   the vertical edges and (b) finding physical communication paths
   between the footprints — the paper's join query.

   Uses the generated virtualized-service topology (33 VNFs, ~2,000
   nodes) rather than a toy graph.

   Run with: dune exec examples/induced_paths.exe *)

module Nepal = Core.Nepal
module Virt = Nepal.Virt_service

let ok = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

let () =
  Format.printf "generating the virtualized service topology...@.";
  let t = Virt.generate ~seed:2024 () in
  let db = Nepal.of_store t.Virt.store in
  let store = Nepal.store db in
  Format.printf "loaded: %d nodes, %d edges@."
    (Nepal.Graph_store.count_current store ~cls:"Node")
    (Nepal.Graph_store.count_current store ~cls:"Edge");

  (* Pick a service-layer flow: the first ServiceLink edge. *)
  let service_links =
    Nepal.Graph_store.scan_class store ~tc:Nepal.Time_constraint.Snapshot "ServiceLink"
  in
  let flow = List.hd service_links in
  let vnf_a = Nepal.Entity.src flow and vnf_b = Nepal.Entity.dst flow in
  let id_of uid =
    match Nepal.Graph_store.get store ~tc:Nepal.Time_constraint.Snapshot uid with
    | Some e -> (
        match Nepal.Entity.field e "id" with Nepal.Value.Int v -> v | _ -> -1)
    | None -> -1
  in
  let a = id_of vnf_a and b = id_of vnf_b in
  Format.printf "@.service-layer flow: VNF(id=%d) -> VNF(id=%d)@." a b;

  (* Footprints: all servers each VNF depends on. *)
  let footprint vnf_id =
    let q =
      Printf.sprintf
        "Select target(P).id From PATHS P Where P MATCHES \
         VNF(id=%d)->[Vertical()]{1,6}->Server()"
        vnf_id
    in
    match ok (Nepal.query db q) with
    | Nepal.Engine.Table { rows; _ } ->
        List.filter_map
          (function [ Nepal.Value.Int v ] -> Some v | _ -> None)
          rows
    | _ -> []
  in
  let fa = footprint a and fb = footprint b in
  Format.printf "footprint of VNF %d: servers %s@." a
    (String.concat ", " (List.map string_of_int fa));
  Format.printf "footprint of VNF %d: servers %s@." b
    (String.concat ", " (List.map string_of_int fb));

  (* The induced physical path: the paper's three-variable join. *)
  let q =
    Printf.sprintf
      "Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys \
       Where D1 MATCHES VNF(id=%d)->[Vertical()]{1,6}->Server() \
       And D2 MATCHES VNF(id=%d)->[Vertical()]{1,6}->Server() \
       And Phys MATCHES [Connects()]{1,4} \
       And source(Phys) = target(D1) \
       And target(Phys) = target(D2)"
      a b
  in
  Format.printf "@.query> %s@.@." q;
  (match ok (Nepal.query db q) with
  | Nepal.Engine.Rows { rows; _ } ->
      Format.printf "%d induced physical path(s); the first three:@."
        (List.length rows);
      List.iteri
        (fun k r ->
          if k < 3 then
            let p = Nepal.Strmap.find "Phys" r.Nepal.Engine.paths in
            Format.printf "  %s@." (Nepal.Path.to_string p))
        rows
  | _ -> ());

  (* Shared fate the other way: a switch fails — which VNFs lose
     physical connectivity redundancy through it? *)
  let switch =
    List.hd
      (Nepal.Graph_store.scan_class store ~tc:Nepal.Time_constraint.Snapshot "Switch_TOR")
  in
  let sw_id = match Nepal.Entity.field switch "id" with Nepal.Value.Int v -> v | _ -> -1 in
  let q2 =
    Printf.sprintf
      "Select source(P).name From PATHS D, PATHS P \
       Where D MATCHES Server()->Connects()->Switch(id=%d) \
       And P MATCHES VNF()->[Vertical()]{1,6}->Server() \
       And target(P) = source(D)"
      sw_id
  in
  Format.printf "@.switch %d failure — services touching it:@." sw_id;
  match ok (Nepal.query db q2) with
  | Nepal.Engine.Table { rows; _ } ->
      Format.printf "%d distinct VNFs would be affected@." (List.length rows)
  | _ -> ()

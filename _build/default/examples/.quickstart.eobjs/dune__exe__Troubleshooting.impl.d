examples/troubleshooting.ml: Core Format List

examples/induced_paths.mli:

examples/troubleshooting.mli:

examples/data_integration.ml: Core Format List Nepal_relational

examples/induced_paths.ml: Core Format List Printf String

examples/quickstart.ml: Core Format List Result

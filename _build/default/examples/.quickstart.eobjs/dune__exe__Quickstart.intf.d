examples/quickstart.mli:

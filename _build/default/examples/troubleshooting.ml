(* History-based troubleshooting (Sections 2.3.2 and 4 of the paper).

   A network engineer is told that dropped calls spiked at 10:00. The
   current (13:00) state of the network looks healthy — the answer is
   in the past. This example builds a service, simulates a failure and
   an automatic repair, and then interrogates the history:

     1. "What was the network path at the time of the failure?"
        (timeslice / AT query)
     2. "What was the footprint of the VNF and how did it evolve?"
        (time-range query with maximal validity intervals)
     3. "When exactly did a working pathway exist?"
        (When-Exists temporal aggregation)
     4. "Which elements share fate with the suspect server?"
        (vertical shared-fate query)

   Run with: dune exec examples/troubleshooting.exe *)

module Nepal = Core.Nepal

let model =
  {|
node_types:
  VNF:
    properties:
      id: int
      name: string
  VFC:
    properties:
      id: int
  VM:
    properties:
      id: int
      status: string
  Host:
    properties:
      id: int
      name: string
edge_types:
  Vertical:
    abstract: true
  HostedOn:
    derived_from: Vertical
|}

let tp = Nepal.Time_point.of_string_exn

let t_morning = tp "2017-02-15 08:00:00"
let t_failure = tp "2017-02-15 10:00:00"
let t_repair = tp "2017-02-15 11:30:00"
let t_now = tp "2017-02-15 13:00:00"

let ok = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

let () =
  let db = Nepal.create (Nepal.Tosca.parse_exn model) in
  let fields l = Nepal.Strmap.of_list l in
  let i n = Nepal.Value.Int n and s x = Nepal.Value.Str x in
  let node ~at cls fs = ok (Nepal.insert_node db ~at ~cls ~fields:(fields fs)) in
  let edge ~at src dst =
    ok (Nepal.insert_edge db ~at ~cls:"HostedOn" ~src ~dst ~fields:Nepal.Strmap.empty)
  in
  (* 08:00 — the vIMS service is deployed on host 7001. *)
  let vnf = node ~at:t_morning "VNF" [ ("id", i 1); ("name", s "vIMS") ] in
  let vfc = node ~at:t_morning "VFC" [ ("id", i 10) ] in
  let vm = node ~at:t_morning "VM" [ ("id", i 100); ("status", s "Green") ] in
  let host_bad = node ~at:t_morning "Host" [ ("id", i 7001); ("name", s "srv-rack3-1") ] in
  let host_ok = node ~at:t_morning "Host" [ ("id", i 7002); ("name", s "srv-rack4-1") ] in
  ignore (edge ~at:t_morning vnf vfc);
  ignore (edge ~at:t_morning vfc vm);
  let hosting = edge ~at:t_morning vm host_bad in
  ignore host_ok;
  (* 10:00 — the VM on host 7001 goes red (the failure). *)
  ok (Nepal.update db ~at:t_failure vm ~fields:(fields [ ("status", s "Red") ]));
  (* 11:30 — orchestration migrates the VM to host 7002 and it greens. *)
  ok (Nepal.delete db ~at:t_repair hosting);
  ignore (ok (Nepal.insert_edge db ~at:t_repair ~cls:"HostedOn" ~src:vm ~dst:host_ok
                ~fields:Nepal.Strmap.empty));
  ok (Nepal.update db ~at:t_repair vm ~fields:(fields [ ("status", s "Green") ]));

  Format.printf "=== 1. The pathway at the time of the failure (AT 10:00) ===@.";
  let q1 =
    "AT '2017-02-15 10:00:00' \
     Retrieve P From PATHS P \
     Where P MATCHES VNF(id=1)->[Vertical()]{1,6}->Host()"
  in
  Format.printf "query> %s@." q1;
  Nepal.Engine.pp_result Format.std_formatter (ok (Nepal.query db q1));

  Format.printf "@.=== 2. Footprint evolution over the day (time range) ===@.";
  let q2 =
    "AT '2017-02-15 00:00' : '2017-02-16 00:00' \
     Retrieve P From PATHS P \
     Where P MATCHES VNF(id=1)->[Vertical()]{1,6}->Host()"
  in
  Format.printf "query> %s@." q2;
  Nepal.Engine.pp_result Format.std_formatter (ok (Nepal.query db q2));

  Format.printf "@.=== 3. When did a *healthy* pathway exist? ===@.";
  let healthy =
    ok
      (Nepal.Rpe.validate (Nepal.schema db)
         (Nepal.Rpe_parser.parse_exn
            "VNF(id=1)->VFC()->VM(status='Green')->[Vertical()]{1,2}->Host()"))
  in
  let window = (tp "2017-02-15 00:00", t_now) in
  let when_ = ok (Nepal.Temporal_agg.when_exists (Nepal.conn db) ~window healthy) in
  Format.printf "healthy pathway existed during %a@." Nepal.Interval_set.pp when_;
  (match ok (Nepal.Temporal_agg.first_time_when_exists (Nepal.conn db) ~window healthy) with
  | Some t -> Format.printf "first healthy: %a@." Nepal.Time_point.pp t
  | None -> Format.printf "never healthy@.");

  Format.printf "@.=== 4. Shared fate of the suspect server ===@.";
  let q4 =
    "AT '2017-02-15 10:00:00' \
     Select source(P).name From PATHS P \
     Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=7001)"
  in
  Format.printf "query> %s@." q4;
  Nepal.Engine.pp_result Format.std_formatter (ok (Nepal.query db q4));

  Format.printf "@.=== 5. Element-level evolution of the VM ===@.";
  let steps =
    Nepal.Temporal_agg.path_evolution (Nepal.conn db)
      ~window:(tp "2017-02-15 00:30", t_now) [ vm ]
  in
  List.iter
    (fun (st : Nepal.Temporal_agg.evolution_step) ->
      Format.printf "%a  element #%d %s@." Nepal.Time_point.pp st.at st.element_uid
        (match st.change with
        | `Appeared -> "appeared"
        | `Changed -> "changed"
        | `Disappeared -> "disappeared"))
    steps;
  Format.printf "@.Verdict: the VNF ran unhealthy on srv-rack3-1 between 10:00 and 11:30,@.";
  Format.printf "and was re-homed to srv-rack4-1 — consistent with the dropped-call spike.@."

(* Quickstart: define a schema in TOSCA text, load a tiny inventory,
   and ask the paper's headline question — "I need to replace server
   23245; which VNFs will be affected?"

   Run with: dune exec examples/quickstart.exe *)

module Nepal = Core.Nepal

let model =
  {|
node_types:
  VNF:
    properties:
      id: int
      name: string
  VFC:
    properties:
      id: int
  VM:
    properties:
      id: int
      status: string
  Host:
    properties:
      id: int
edge_types:
  Vertical:
    abstract: true
  HostedOn:
    derived_from: Vertical
|}

let ( >>= ) = Result.bind

let run () =
  let db = Nepal.create (Nepal.Tosca.parse_exn model) in
  let at = Nepal.Time_point.of_string_exn "2017-02-15 08:00:00" in
  let fields l = Nepal.Strmap.of_list l in
  let i n = Nepal.Value.Int n in
  let node cls fs = Nepal.insert_node db ~at ~cls ~fields:(fields fs) in
  let edge src dst =
    Nepal.insert_edge db ~at ~cls:"HostedOn" ~src ~dst ~fields:Nepal.Strmap.empty
  in
  (* Two services: an EPC and a DNS, both ending up on host 23245. *)
  node "VNF" [ ("id", i 1); ("name", Nepal.Value.Str "vEPC") ] >>= fun epc ->
  node "VNF" [ ("id", i 2); ("name", Nepal.Value.Str "vDNS") ] >>= fun dns ->
  node "VFC" [ ("id", i 11) ] >>= fun vfc1 ->
  node "VFC" [ ("id", i 12) ] >>= fun vfc2 ->
  node "VM" [ ("id", i 21); ("status", Nepal.Value.Str "Green") ] >>= fun vm1 ->
  node "VM" [ ("id", i 22); ("status", Nepal.Value.Str "Green") ] >>= fun vm2 ->
  node "Host" [ ("id", i 23245) ] >>= fun host ->
  edge epc vfc1 >>= fun _ ->
  edge dns vfc2 >>= fun _ ->
  edge vfc1 vm1 >>= fun _ ->
  edge vfc2 vm2 >>= fun _ ->
  edge vm1 host >>= fun _ ->
  edge vm2 host >>= fun _ ->
  (* The quickstart question, in the Nepal query language. Because the
     schema generalizes HostedOn under Vertical, the engineer does not
     need to know how many layers separate a VNF from the hardware. *)
  let q =
    "Select source(P).name From PATHS P \
     Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=23245)"
  in
  print_endline ("query> " ^ q);
  Nepal.query db q >>= fun result ->
  Nepal.Engine.pp_result Format.std_formatter result;
  (* Aggregation over pathway sets: how many dependent VNFs per host? *)
  let q2 =
    "Select target(P).id, count(P) From PATHS P \
     Where P MATCHES VNF()->[Vertical()]{1,6}->Host()"
  in
  print_endline ("query> " ^ q2);
  Nepal.query db q2 >>= fun result2 ->
  Nepal.Engine.pp_result Format.std_formatter result2;
  (* And the raw pathways, via the RPE API. *)
  Nepal.find_paths db "VNF()->[Vertical()]{1,6}->Host(id=23245)" >>= fun paths ->
  List.iter (fun p -> Format.printf "pathway: %s@." (Nepal.Path.to_string p)) paths;
  Ok ()

let () =
  match run () with
  | Ok () -> ()
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

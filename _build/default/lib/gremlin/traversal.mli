(** A small Gremlin-style traversal machine.

    Traversals are step lists interpreted over a {!Pgraph.t}; each
    traverser carries the pathway walked so far, which makes Nepal's
    path-valued results natural. [to_gremlin] renders the Gremlin text
    the paper's code generator would send to a real TinkerPop server. *)

module Value = Nepal_schema.Value

type comparison = Eq | Neq | Lt | Lte | Gt | Gte

type pstep =
  | V                              (** start from all vertices *)
  | E                              (** start from all edges *)
  | V_ids of int list              (** start from given vertices (channel input) *)
  | E_ids of int list
  | Has_label of string            (** label-prefix concept match *)
  | Has of string * comparison * Value.t
  | Has_period_at of Nepal_temporal.Time_point.t
      (** sys_period contains the instant *)
  | Has_period_overlaps of Nepal_temporal.Time_point.t * Nepal_temporal.Time_point.t
  | Has_period_current
  | Out_e                          (** vertex -> outgoing edges *)
  | In_e                           (** vertex -> incoming edges *)
  | Both_e
  | Out_v                          (** edge -> source vertex *)
  | In_v                           (** edge -> target vertex *)
  | Other_v                        (** edge -> the endpoint not just visited *)
  | Simple_path                    (** discard traversers that revisit an element *)
  | Union of pstep list list
  | Repeat of pstep list * int * int
      (** [Repeat (body, i, j)]: emit after every k-th completion with
          [i <= k <= j] — the paper's ExtendBlock loop unrolling *)
  | Dedup
  | Limit of int

type traverser = {
  here : int;                      (** current element id *)
  path : int list;                 (** ids walked, oldest first *)
}

val run :
  Pgraph.t -> ?sources:traverser list -> pstep list -> traverser list
(** [sources] feeds an already-materialized frontier into the traversal
    (the "channel" mechanism of Section 5.2); when absent the step list
    must begin with [V], [E], [V_ids] or [E_ids]. *)

val results : Pgraph.t -> traverser list -> Pgraph.element list
(** Resolve final positions. *)

val paths : Pgraph.t -> traverser list -> Pgraph.element list list

val to_gremlin : pstep list -> string

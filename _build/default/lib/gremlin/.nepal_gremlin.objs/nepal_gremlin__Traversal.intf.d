lib/gremlin/traversal.mli: Nepal_schema Nepal_temporal Pgraph

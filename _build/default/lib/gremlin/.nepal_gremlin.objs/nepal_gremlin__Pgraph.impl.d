lib/gremlin/pgraph.ml: Hashtbl Int List Nepal_schema Nepal_util Printf String

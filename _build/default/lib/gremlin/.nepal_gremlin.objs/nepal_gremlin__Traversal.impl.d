lib/gremlin/traversal.ml: Hashtbl Int List Nepal_schema Nepal_temporal Nepal_util Pgraph Printf String

lib/gremlin/pgraph.mli: Nepal_schema Nepal_util

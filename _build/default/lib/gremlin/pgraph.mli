(** A TinkerPop-style property graph.

    Unlike the Nepal store this substrate is schema-free: vertices and
    edges carry a single string label and arbitrary properties ("common
    property-graph systems will let you load garbage without any
    warnings", Section 6.1 — tests demonstrate exactly that). The Nepal
    translation encodes class inheritance in the label as the full
    inheritance path ([Node:VM:VMWare]) and matches concepts by label
    prefix, as Section 5.2 describes. Transaction-time periods are kept
    in the reserved [sys_period] property so the temporal slice
    predicates can be pushed into traversals. *)

module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap

type t

type element = {
  id : int;
  label : string;
  props : Value.t Strmap.t;
  endpoints : (int * int) option;  (** [Some (out_v, in_v)] for edges *)
}

val create : unit -> t

val add_vertex : t -> ?id:int -> label:string -> Value.t Strmap.t -> int
(** Returns the vertex id (fresh unless forced; forcing an existing id
    raises [Invalid_argument]). *)

val add_edge :
  t -> ?id:int -> label:string -> src:int -> dst:int -> Value.t Strmap.t -> int
(** @raise Invalid_argument when an endpoint does not exist — the only
    integrity check a property graph gives you. *)

val set_props : t -> int -> Value.t Strmap.t -> unit
(** Merge properties into an element. @raise Not_found. *)

val remove : t -> int -> unit
(** Remove an element; removing a vertex drops its incident edges. *)

val element : t -> int -> element option
val is_vertex : element -> bool

val vertices : t -> element list
val edges : t -> element list

val vertices_by_label_prefix : t -> string -> element list
(** Prefix match on whole label segments: ["Node:VM"] matches
    ["Node:VM:VMWare"] but not ["Node:VMX"]. *)

val edges_by_label_prefix : t -> string -> element list

val out_edges : t -> int -> element list
val in_edges : t -> int -> element list

val vertex_count : t -> int
val edge_count : t -> int

module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap

type element = {
  id : int;
  label : string;
  props : Value.t Strmap.t;
  endpoints : (int * int) option;
}

type t = {
  mutable next_id : int;
  elements : (int, element) Hashtbl.t;
  adj_out : (int, int list) Hashtbl.t;
  adj_in : (int, int list) Hashtbl.t;
  (* Label-segment index: first segment -> element ids, to make prefix
     scans cheaper than a full pass. *)
  by_first_segment : (string, int list) Hashtbl.t;
}

let create () =
  {
    next_id = 1;
    elements = Hashtbl.create 4096;
    adj_out = Hashtbl.create 4096;
    adj_in = Hashtbl.create 4096;
    by_first_segment = Hashtbl.create 64;
  }

let first_segment label =
  match String.index_opt label ':' with
  | Some i -> String.sub label 0 i
  | None -> label

let register t e =
  Hashtbl.replace t.elements e.id e;
  let seg = first_segment e.label in
  let existing =
    match Hashtbl.find_opt t.by_first_segment seg with Some l -> l | None -> []
  in
  Hashtbl.replace t.by_first_segment seg (e.id :: existing)

let take_id t = function
  | Some id ->
      if Hashtbl.mem t.elements id then
        invalid_arg (Printf.sprintf "Pgraph: id %d already in use" id)
      else begin
        if id >= t.next_id then t.next_id <- id + 1;
        id
      end
  | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      id

let add_vertex t ?id ~label props =
  let id = take_id t id in
  register t { id; label; props; endpoints = None };
  id

let add_edge t ?id ~label ~src ~dst props =
  (match (Hashtbl.find_opt t.elements src, Hashtbl.find_opt t.elements dst) with
  | Some { endpoints = None; _ }, Some { endpoints = None; _ } -> ()
  | _ -> invalid_arg "Pgraph.add_edge: endpoints must be existing vertices");
  let id = take_id t id in
  register t { id; label; props; endpoints = Some (src, dst) };
  let push tbl k v =
    let existing = match Hashtbl.find_opt tbl k with Some l -> l | None -> [] in
    Hashtbl.replace tbl k (v :: existing)
  in
  push t.adj_out src id;
  push t.adj_in dst id;
  id

let set_props t id props =
  match Hashtbl.find_opt t.elements id with
  | None -> raise Not_found
  | Some e ->
      let merged = Strmap.fold Strmap.add props e.props in
      Hashtbl.replace t.elements id { e with props = merged }

let unregister t id =
  match Hashtbl.find_opt t.elements id with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.elements id;
      let seg = first_segment e.label in
      (match Hashtbl.find_opt t.by_first_segment seg with
      | Some l ->
          Hashtbl.replace t.by_first_segment seg (List.filter (fun x -> x <> id) l)
      | None -> ());
      (match e.endpoints with
      | Some (s, d) ->
          let strip tbl k =
            match Hashtbl.find_opt tbl k with
            | Some l -> Hashtbl.replace tbl k (List.filter (fun x -> x <> id) l)
            | None -> ()
          in
          strip t.adj_out s;
          strip t.adj_in d
      | None -> ())

let rec remove t id =
  match Hashtbl.find_opt t.elements id with
  | None -> ()
  | Some { endpoints = Some _; _ } -> unregister t id
  | Some { endpoints = None; _ } ->
      let incident =
        (match Hashtbl.find_opt t.adj_out id with Some l -> l | None -> [])
        @ (match Hashtbl.find_opt t.adj_in id with Some l -> l | None -> [])
      in
      List.iter (remove t) incident;
      Hashtbl.remove t.adj_out id;
      Hashtbl.remove t.adj_in id;
      unregister t id

let element t id = Hashtbl.find_opt t.elements id
let is_vertex e = e.endpoints = None

let all_elements t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.elements []
  |> List.sort (fun a b -> Int.compare a.id b.id)

let vertices t = List.filter is_vertex (all_elements t)
let edges t = List.filter (fun e -> not (is_vertex e)) (all_elements t)

(* Prefix on whole segments: "Node:VM" matches "Node:VM" and
   "Node:VM:X" but not "Node:VMX". *)
let label_has_prefix ~prefix label =
  let lp = String.length prefix and ll = String.length label in
  lp <= ll
  && String.sub label 0 lp = prefix
  && (ll = lp || label.[lp] = ':')

let by_label_prefix t prefix ~want_vertex =
  let candidates =
    match Hashtbl.find_opt t.by_first_segment (first_segment prefix) with
    | Some ids -> List.filter_map (Hashtbl.find_opt t.elements) ids
    | None -> []
  in
  List.filter
    (fun e -> is_vertex e = want_vertex && label_has_prefix ~prefix e.label)
    candidates
  |> List.sort (fun a b -> Int.compare a.id b.id)

let vertices_by_label_prefix t prefix = by_label_prefix t prefix ~want_vertex:true
let edges_by_label_prefix t prefix = by_label_prefix t prefix ~want_vertex:false

let incident t tbl id =
  match Hashtbl.find_opt tbl id with
  | Some ids ->
      List.filter_map (Hashtbl.find_opt t.elements) ids
      |> List.sort (fun a b -> Int.compare a.id b.id)
  | None -> []

let out_edges t id = incident t t.adj_out id
let in_edges t id = incident t t.adj_in id

let vertex_count t = List.length (vertices t)
let edge_count t = List.length (edges t)

module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap
module Time_point = Nepal_temporal.Time_point

type comparison = Eq | Neq | Lt | Lte | Gt | Gte

type pstep =
  | V
  | E
  | V_ids of int list
  | E_ids of int list
  | Has_label of string
  | Has of string * comparison * Value.t
  | Has_period_at of Time_point.t
  | Has_period_overlaps of Time_point.t * Time_point.t
  | Has_period_current
  | Out_e
  | In_e
  | Both_e
  | Out_v
  | In_v
  | Other_v
  | Simple_path
  | Union of pstep list list
  | Repeat of pstep list * int * int
  | Dedup
  | Limit of int

type traverser = { here : int; path : int list }

let fresh id = { here = id; path = [ id ] }
let step_to t id = { here = id; path = t.path @ [ id ] }

let compare_ok op a b =
  if a = Value.Null || b = Value.Null then false
  else
    let c = Value.compare a b in
    match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Lte -> c <= 0
    | Gt -> c > 0
    | Gte -> c >= 0

let period_of (e : Pgraph.element) =
  match Strmap.find_opt "sys_period" e.props with
  | Some (Value.List [ Value.Time s; Value.Null ]) ->
      Some (Nepal_temporal.Interval.from s)
  | Some (Value.List [ Value.Time s; Value.Time e' ])
    when Time_point.compare s e' < 0 ->
      Some (Nepal_temporal.Interval.between s e')
  | _ -> None

let rec apply g (trs : traverser list) (step : pstep) : traverser list =
  let with_elem f =
    List.filter
      (fun t ->
        match Pgraph.element g t.here with Some e -> f t e | None -> false)
      trs
  in
  match step with
  | V -> List.map (fun (e : Pgraph.element) -> fresh e.id) (Pgraph.vertices g)
  | E -> List.map (fun (e : Pgraph.element) -> fresh e.id) (Pgraph.edges g)
  | V_ids ids | E_ids ids -> List.map fresh ids
  | Has_label prefix ->
      with_elem (fun _ e ->
          let lp = String.length prefix and ll = String.length e.label in
          lp <= ll
          && String.sub e.label 0 lp = prefix
          && (ll = lp || e.label.[lp] = ':'))
  | Has (prop, op, v) ->
      with_elem (fun _ e ->
          compare_ok op (Strmap.find_opt_or prop ~default:Value.Null e.props) v)
  | Has_period_at tp ->
      with_elem (fun _ e ->
          match period_of e with
          | Some iv -> Nepal_temporal.Interval.contains iv tp
          | None -> false)
  | Has_period_overlaps (a, b) ->
      with_elem (fun _ e ->
          match period_of e with
          | Some iv ->
              Nepal_temporal.Interval.overlaps iv (Nepal_temporal.Interval.between a b)
          | None -> false)
  | Has_period_current ->
      with_elem (fun _ e ->
          match period_of e with
          | Some iv -> Nepal_temporal.Interval.is_current iv
          | None -> false)
  | Out_e ->
      List.concat_map
        (fun t ->
          List.map (fun (e : Pgraph.element) -> step_to t e.id) (Pgraph.out_edges g t.here))
        trs
  | In_e ->
      List.concat_map
        (fun t ->
          List.map (fun (e : Pgraph.element) -> step_to t e.id) (Pgraph.in_edges g t.here))
        trs
  | Both_e ->
      List.concat_map
        (fun t ->
          List.map
            (fun (e : Pgraph.element) -> step_to t e.id)
            (Pgraph.out_edges g t.here @ Pgraph.in_edges g t.here))
        trs
  | Out_v ->
      List.filter_map
        (fun t ->
          match Pgraph.element g t.here with
          | Some { endpoints = Some (s, _); _ } -> Some (step_to t s)
          | _ -> None)
        trs
  | In_v ->
      List.filter_map
        (fun t ->
          match Pgraph.element g t.here with
          | Some { endpoints = Some (_, d); _ } -> Some (step_to t d)
          | _ -> None)
        trs
  | Other_v ->
      List.filter_map
        (fun t ->
          match Pgraph.element g t.here with
          | Some { endpoints = Some (s, d); _ } -> (
              (* The endpoint we did not arrive from. *)
              match List.rev t.path with
              | _edge :: prev :: _ ->
                  if prev = s then Some (step_to t d)
                  else if prev = d then Some (step_to t s)
                  else None
              | _ -> Some (step_to t d))
          | _ -> None)
        trs
  | Simple_path ->
      List.filter
        (fun t -> List.length (List.sort_uniq Int.compare t.path) = List.length t.path)
        trs
  | Union branches ->
      List.concat_map (fun body -> List.fold_left (apply g) trs body) branches
  | Repeat (body, i, j) ->
      let rec go k current emitted =
        if k > j || current = [] then emitted
        else
          let next = List.fold_left (apply g) current body in
          let emitted = if k >= i then emitted @ next else emitted in
          go (k + 1) next emitted
      in
      let base = if i = 0 then trs else [] in
      base @ go 1 trs []
  | Dedup ->
      let seen = Hashtbl.create 64 in
      List.filter
        (fun t ->
          if Hashtbl.mem seen t.here then false
          else begin
            Hashtbl.replace seen t.here ();
            true
          end)
        trs
  | Limit n -> List.filteri (fun i _ -> i < n) trs

let run g ?(sources = []) steps = List.fold_left (apply g) sources steps

let results g trs = List.filter_map (fun t -> Pgraph.element g t.here) trs

let paths g trs =
  List.map (fun t -> List.filter_map (Pgraph.element g) t.path) trs

(* -- Gremlin text rendering ----------------------------------------- *)

let comparison_gremlin = function
  | Eq -> "eq"
  | Neq -> "neq"
  | Lt -> "lt"
  | Lte -> "lte"
  | Gt -> "gt"
  | Gte -> "gte"

let value_gremlin = function
  | Value.Str s -> Printf.sprintf "'%s'" s
  | Value.Time t -> Printf.sprintf "'%s'" (Time_point.to_string t)
  | Value.Ip ip -> Printf.sprintf "'%s'" (Value.ip_to_string ip)
  | v -> Value.to_string v

let rec step_gremlin = function
  | V -> "V()"
  | E -> "E()"
  | V_ids ids ->
      Printf.sprintf "V(%s)" (String.concat ", " (List.map string_of_int ids))
  | E_ids ids ->
      Printf.sprintf "E(%s)" (String.concat ", " (List.map string_of_int ids))
  | Has_label prefix -> Printf.sprintf "hasLabel(startingWith('%s'))" prefix
  | Has (p, Eq, v) -> Printf.sprintf "has('%s', %s)" p (value_gremlin v)
  | Has (p, op, v) ->
      Printf.sprintf "has('%s', %s(%s))" p (comparison_gremlin op) (value_gremlin v)
  | Has_period_at tp ->
      Printf.sprintf "has('sys_period', containing('%s'))" (Time_point.to_string tp)
  | Has_period_overlaps (a, b) ->
      Printf.sprintf "has('sys_period', overlapping('%s','%s'))"
        (Time_point.to_string a) (Time_point.to_string b)
  | Has_period_current -> "has('sys_period', current())"
  | Out_e -> "outE()"
  | In_e -> "inE()"
  | Both_e -> "bothE()"
  | Out_v -> "outV()"
  | In_v -> "inV()"
  | Other_v -> "otherV()"
  | Simple_path -> "simplePath()"
  | Union branches ->
      Printf.sprintf "union(%s)"
        (String.concat ", " (List.map body_gremlin branches))
  | Repeat (body, i, j) ->
      Printf.sprintf "repeat(%s).times(%d..%d).emit()" (body_gremlin body) i j
  | Dedup -> "dedup()"
  | Limit n -> Printf.sprintf "limit(%d)" n

and body_gremlin body = String.concat "." (List.map step_gremlin body)

let to_gremlin steps = "g." ^ body_gremlin steps

module Strmap = Nepal_util.Strmap
module Value = Nepal_schema.Value
module Interval = Nepal_temporal.Interval

type uid = int

type t = {
  uid : uid;
  cls : string;
  fields : Value.t Strmap.t;
  period : Interval.t;
  endpoints : (uid * uid) option;
}

let is_edge t = t.endpoints <> None
let is_node t = t.endpoints = None

let src t =
  match t.endpoints with
  | Some (s, _) -> s
  | None -> invalid_arg "Entity.src: not an edge"

let dst t =
  match t.endpoints with
  | Some (_, d) -> d
  | None -> invalid_arg "Entity.dst: not an edge"

let field t name = Strmap.find_opt_or name ~default:Value.Null t.fields

let pp ppf t =
  let endpoints =
    match t.endpoints with
    | Some (s, d) -> Printf.sprintf " %d->%d" s d
    | None -> ""
  in
  Format.fprintf ppf "#%d:%s%s %s %s" t.uid t.cls endpoints
    (String.concat ","
       (List.map
          (fun (k, v) -> k ^ "=" ^ Value.to_string v)
          (Strmap.bindings t.fields)))
    (Interval.to_string t.period)

(** A version of a node or edge record.

    Every entity version carries the transaction-time interval during
    which it was (or still is) current. Edges additionally carry their
    endpoint node uids; endpoints are immutable across versions of the
    same edge. *)

type uid = int

type t = {
  uid : uid;
  cls : string;  (** concrete class name *)
  fields : Nepal_schema.Value.t Nepal_util.Strmap.t;
  period : Nepal_temporal.Interval.t;
  endpoints : (uid * uid) option;  (** [Some (src, dst)] iff an edge *)
}

val is_edge : t -> bool
val is_node : t -> bool

val src : t -> uid
(** @raise Invalid_argument on nodes. *)

val dst : t -> uid
(** @raise Invalid_argument on nodes. *)

val field : t -> string -> Nepal_schema.Value.t
(** [Null] when absent. *)

val pp : Format.formatter -> t -> unit

lib/store/graph_store.mli: Entity Nepal_schema Nepal_temporal Nepal_util

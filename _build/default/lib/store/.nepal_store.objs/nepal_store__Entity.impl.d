lib/store/entity.ml: Format List Nepal_schema Nepal_temporal Nepal_util Printf String

lib/store/entity.mli: Format Nepal_schema Nepal_temporal Nepal_util

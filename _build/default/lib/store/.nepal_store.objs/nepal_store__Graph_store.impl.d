lib/store/graph_store.ml: Entity Hashtbl Int List Nepal_schema Nepal_temporal Nepal_util Option Printf Result String

lib/rpe/token_stream.mli: Lexer

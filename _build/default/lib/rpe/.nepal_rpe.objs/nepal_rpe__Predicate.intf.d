lib/rpe/predicate.mli: Format Nepal_schema Nepal_util

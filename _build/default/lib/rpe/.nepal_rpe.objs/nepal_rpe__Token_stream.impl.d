lib/rpe/token_stream.ml: Lexer Printf String

lib/rpe/anchor.mli: Rpe

lib/rpe/anchor.ml: Array Fun List Option Predicate Printf Rpe

lib/rpe/nfa.ml: Array List Rpe

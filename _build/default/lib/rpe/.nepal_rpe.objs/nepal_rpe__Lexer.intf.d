lib/rpe/lexer.mli:

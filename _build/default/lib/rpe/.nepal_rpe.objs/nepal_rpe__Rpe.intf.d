lib/rpe/rpe.mli: Format Nepal_schema Nepal_util Predicate

lib/rpe/lexer.ml: Buffer List Printf String

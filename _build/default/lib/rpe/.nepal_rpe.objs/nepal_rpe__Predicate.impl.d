lib/rpe/predicate.ml: Format List Nepal_schema Nepal_temporal Nepal_util Printf Result String

lib/rpe/rpe_parser.ml: Lexer List Nepal_schema Predicate Printf Result Rpe String Token_stream

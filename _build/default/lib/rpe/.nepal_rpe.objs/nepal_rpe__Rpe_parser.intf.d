lib/rpe/rpe_parser.mli: Rpe Token_stream

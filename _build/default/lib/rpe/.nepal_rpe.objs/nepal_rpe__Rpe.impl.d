lib/rpe/rpe.ml: Format List Nepal_schema Predicate Printf Result String

lib/rpe/nfa.mli: Rpe

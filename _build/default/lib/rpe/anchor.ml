type split = {
  before : Rpe.norm option;
  anchor : Rpe.atom;
  after : Rpe.norm option;
}

type selection = { splits : split list; cost : float }

(* Compose a list of optional RPEs into an optional sequence. *)
let seq_opt parts =
  match List.filter_map Fun.id parts with
  | [] -> None
  | [ one ] -> Some one
  | many -> Some (Rpe.N_seq many)

let map_splits f sel = { sel with splits = List.map f sel.splits }

let rec enumerate ~cost (r : Rpe.norm) : selection list =
  match r with
  | Rpe.N_atom a -> [ { splits = [ { before = None; anchor = a; after = None } ];
                        cost = cost a } ]
  | Rpe.N_seq rs ->
      (* An anchor inside item k keeps the other items as prefix/suffix
         context. *)
      let arr = Array.of_list rs in
      let n = Array.length arr in
      List.concat
        (List.init n (fun k ->
             let prefix = Array.to_list (Array.sub arr 0 k) in
             let suffix = Array.to_list (Array.sub arr (k + 1) (n - k - 1)) in
             let wrap (s : split) =
               {
                 s with
                 before = seq_opt (List.map Option.some prefix @ [ s.before ]);
                 after = seq_opt ((s.after :: List.map Option.some suffix));
               }
             in
             List.map (map_splits wrap) (enumerate ~cost arr.(k))))
  | Rpe.N_alt rs ->
      (* Keep only the best anchor per branch and return their union as
         a single candidate (avoids the cross-product explosion). *)
      let best_per_branch =
        List.map
          (fun branch ->
            match enumerate ~cost branch with
            | [] -> None
            | cands ->
                Some
                  (List.fold_left
                     (fun acc c -> if c.cost < acc.cost then c else acc)
                     (List.hd cands) (List.tl cands)))
          rs
      in
      if List.exists Option.is_none best_per_branch then []
      else
        let chosen = List.filter_map Fun.id best_per_branch in
        [
          {
            splits = List.concat_map (fun c -> c.splits) chosen;
            cost = List.fold_left (fun acc c -> acc +. c.cost) 0. chosen;
          };
        ]
  | Rpe.N_rep (inner, i, j) ->
      if i = 0 then []
      else
        (* Repetition(r,i,j) = Sequence(r, Repetition(r,i-1,j-1)); the
           anchor set comes from the first copy. *)
        let rest = if j - 1 >= 1 then Some (Rpe.N_rep (inner, i - 1, j - 1)) else None in
        let wrap (s : split) = { s with after = seq_opt [ s.after; rest ] } in
        List.map (map_splits wrap) (enumerate ~cost inner)

let select ~cost r =
  match enumerate ~cost r with
  | [] ->
      Error
        (Printf.sprintf
           "RPE %s has no anchor: every satisfying set is unbounded (did you \
            use only {0,n} repetition blocks?)"
           (Rpe.norm_to_string r))
  | first :: rest ->
      Ok (List.fold_left (fun acc c -> if c.cost < acc.cost then c else acc) first rest)

let split_to_string s =
  let part = function
    | None -> "·"
    | Some r -> Rpe.norm_to_string r
  in
  Printf.sprintf "%s ⟨%s(%s)⟩ %s" (part s.before) s.anchor.Rpe.cls
    (Predicate.to_string s.anchor.Rpe.pred)
    (part s.after)

(** Anchor enumeration, costing and selection (Section 5.1).

    An anchor is a small set of atoms that "splits" the RPE: every
    satisfying pathway passes through exactly one of them. Evaluation
    starts at the anchor's records and extends forwards through the
    suffix RPE and backwards through the (reversed) prefix. Inside an
    alternation, the anchor is the union of one anchor per branch (the
    cross-product blow-up is avoided by keeping only the cheapest
    anchor of each branch, as the paper's implementation does).
    Repetitions [\[r\]{i,j}] with [i >= 1] contribute anchors from the
    unrolled first copy; with [i = 0] they cannot be split (the empty
    pathway satisfies them). *)

type split = {
  before : Rpe.norm option;  (** RPE to the left of the anchor atom *)
  anchor : Rpe.atom;
  after : Rpe.norm option;   (** RPE to the right *)
}

type selection = {
  splits : split list;
      (** One split per alternation branch covered; evaluating the RPE =
          union of evaluating each split. *)
  cost : float;  (** sum of estimated anchor-atom cardinalities *)
}

val enumerate : cost:(Rpe.atom -> float) -> Rpe.norm -> selection list
(** All candidate anchors with their costs. Empty when the RPE has no
    anchor (e.g. only [{0,j}] repetition blocks). *)

val select : cost:(Rpe.atom -> float) -> Rpe.norm -> (selection, string) result
(** The cheapest candidate, or an error explaining that the RPE is not
    anchorable. *)

val split_to_string : split -> string

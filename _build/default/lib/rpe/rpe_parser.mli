(** Parser for the textual RPE syntax used throughout the paper:

    {v
    VNF(id=55)->[Connects()]{1,5}->VM(id=66)
    VNF()->[Vertical()]{1,6}->Host(id=23245)
    (VM(id=55)|Docker(id=66))->HostedOn(){1,2}->Host()
    v}

    Accepted notational variants (all appear in the paper):
    repetition braces directly after an atom ([Vertical(){1,6}]) or
    after a bracket group ([\[Vertical()\]{1,6}]); bounds separated by a
    comma or a dash ([{1-3}]); [!=] or [<>] for inequality. *)

val parse : string -> (Rpe.t, string) result

val parse_exn : string -> Rpe.t

val parse_rpe_from : Token_stream.t -> (Rpe.t, string) result
(** Parse an RPE starting at the stream cursor, leaving trailing tokens
    unconsumed — used by the query-language parser after [MATCHES]. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 step: advance by the golden gamma, then mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  assert (n > 0);
  (* Mask to the 62 low bits so the OCaml int is always non-negative. *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod n

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_list t l =
  let n = List.length l in
  assert (n > 0);
  List.nth l (int t n)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  assert (k <= Array.length arr);
  let copy = Array.copy arr in
  shuffle t copy;
  Array.sub copy 0 k

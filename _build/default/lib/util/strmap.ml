(* Ordered string maps used throughout the system for field records. *)

include Map.Make (String)

let of_list l = List.fold_left (fun m (k, v) -> add k v m) empty l

let keys m = List.map fst (bindings m)

let find_opt_or k ~default m =
  match find_opt k m with Some v -> v | None -> default

(** Deterministic pseudo-random number generator (SplitMix64).

    All synthetic-topology generation and workload sampling in this
    repository goes through this module so that experiments are exactly
    reproducible from a seed, independent of the OCaml [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a generator; equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements (k <= length). *)

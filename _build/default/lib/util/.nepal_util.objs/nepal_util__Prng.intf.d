lib/util/prng.mli:

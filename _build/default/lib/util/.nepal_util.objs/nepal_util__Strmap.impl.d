lib/util/strmap.ml: List Map String

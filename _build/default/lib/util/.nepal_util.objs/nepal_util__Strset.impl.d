lib/util/strset.ml: List Set String

lib/util/intmap.ml: Int List Map

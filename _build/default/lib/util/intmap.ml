include Map.Make (Int)

let of_list l = List.fold_left (fun m (k, v) -> add k v m) empty l

include Set.Make (String)

let of_list l = List.fold_left (fun s x -> add x s) empty l

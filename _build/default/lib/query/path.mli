(** Pathways — the first-class values of the Nepal language.

    A pathway is an alternating sequence of node and edge elements
    beginning and ending with a node. Under a time-range query each
    pathway carries the maximal interval set during which all of its
    elements (co)existed. *)

module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap
module Interval_set = Nepal_temporal.Interval_set

type element = {
  uid : int;
  cls : string;
  fields : Value.t Strmap.t;
  is_node : bool;
}

type t = {
  elements : element list;
  valid : Interval_set.t option;
      (** [Some] only for time-range queries: the maximal set of
          intervals during which the pathway held. *)
}

val well_formed : t -> bool
(** Starts and ends with a node and alternates node/edge. *)

val source : t -> element
(** First node. @raise Invalid_argument on an empty pathway. *)

val target : t -> element
(** Last node. *)

val length : t -> int
(** Number of edges (hops). *)

val nodes : t -> element list
val edges : t -> element list

val key : t -> int list
(** Uid sequence — identity for deduplication. *)

val field : element -> string -> Value.t

val compare : t -> t -> int
(** By uid sequence. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parser for the full Nepal query language, covering every query form
    shown in the paper: [Retrieve]/[Select], query-level and
    per-variable [AT] time points and ranges, [MATCHES] with full RPEs,
    [source]/[target]/[length] functions with field access, joins, and
    [NOT EXISTS] subqueries. Keywords are case-insensitive. *)

val parse : string -> (Query_ast.query, string) result
val parse_exn : string -> Query_ast.query

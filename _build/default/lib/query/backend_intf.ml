(** The retargetable-backend interface (Section 3.1 / 5.2).

    The evaluator drives Select and Extend operations through this
    signature; each target system (the native store, the relational
    engine, the property-graph engine) supplies the bulk operations and
    may log the query text it would ship to a real server. *)

module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap
module Time_constraint = Nepal_temporal.Time_constraint
module Time_point = Nepal_temporal.Time_point
module Interval_set = Nepal_temporal.Interval_set
module Rpe = Nepal_rpe.Rpe

type direction = Fwd | Bwd

type extend_item = {
  item_id : int;      (** caller's identifier for the partial pathway *)
  frontier : Path.element;
  visited : int list; (** uids already on the pathway, for cycle pruning *)
}

(** What the next element may be matched against: the classes let the
    backend prune irrelevant extents (the Section 6 re-classing
    experiment); [with_skip] forces unrestricted neighbourhood expansion
    because a junction skip could consume anything. *)
type extend_spec = { atoms : Rpe.atom list; with_skip : bool }

module type S = sig
  type t

  val name : string
  val schema : t -> Nepal_schema.Schema.t

  val select_atom :
    t -> tc:Time_constraint.t -> Rpe.atom -> Path.element list
  (** All elements satisfying the atom under the constraint (Select
      operator / anchor evaluation). *)

  val estimate_atom : t -> Rpe.atom -> float
  (** Anchor cost: estimated matching-record count, from statistics when
      available, otherwise schema hints (Section 5.1). *)

  val bulk_extend :
    t ->
    tc:Time_constraint.t ->
    dir:direction ->
    spec:extend_spec ->
    extend_item list ->
    (int * Path.element) list
  (** One-element extension of every item (Extend operator). [Fwd] from
      a node follows outgoing edges; from an edge reaches its target
      node. [Bwd] mirrors. Candidates that would revisit a uid in
      [visited] are pruned; candidates that match no atom are pruned
      unless [with_skip]. The exact per-atom match is re-checked by the
      evaluator; the backend may over-approximate (e.g. class-only
      filtering). *)

  val presence :
    t ->
    uid:int ->
    window:Time_point.t * Time_point.t ->
    pred:(Value.t Strmap.t -> bool) option ->
    Interval_set.t
  (** When (within the window) did the element exist and satisfy the
      predicate? Drives time-range pathway validity. *)

  val element_by_uid : t -> tc:Time_constraint.t -> int -> Path.element option

  val version_boundaries :
    t -> uid:int -> window:Time_point.t * Time_point.t -> Time_point.t list
  (** Transaction times (within the window) at which the element gained
      a new version, changed, or was deleted — drives path-evolution
      queries. Sorted ascending. *)
end

type 'a backend = (module S with type t = 'a)

(** A backend packaged with its connection value, so heterogeneous
    backends can be mixed in one query (the data-integration story). *)
type conn = Conn : 'a backend * 'a -> conn

let conn_name (Conn ((module B), _)) = B.name
let conn_schema (Conn ((module B), t)) = B.schema t

let select_atom (Conn ((module B), t)) ~tc atom = B.select_atom t ~tc atom
let estimate_atom (Conn ((module B), t)) atom = B.estimate_atom t atom

let bulk_extend (Conn ((module B), t)) ~tc ~dir ~spec items =
  B.bulk_extend t ~tc ~dir ~spec items

let presence (Conn ((module B), t)) ~uid ~window ~pred =
  B.presence t ~uid ~window ~pred

let element_by_uid (Conn ((module B), t)) ~tc uid = B.element_by_uid t ~tc uid

let version_boundaries (Conn ((module B), t)) ~uid ~window =
  B.version_boundaries t ~uid ~window

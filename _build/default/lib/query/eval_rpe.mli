(** Anchored pathway-set evaluation (Section 5.1).

    The evaluator selects the cheapest anchor, runs a Select against the
    backend, and extends the anchor records forwards through the suffix
    NFA and backwards through the reversed-prefix NFA, one bulk Extend
    per round. Union operators arise implicitly from multi-split anchors
    (alternations). Pathways are cycle-free, as in the paper's generated
    SQL. *)

module Time_constraint = Nepal_temporal.Time_constraint
module Rpe = Nepal_rpe.Rpe

type seed =
  | Anywhere
      (** anchored evaluation — the RPE must contain an anchor *)
  | From_nodes of Path.element list
      (** the pathway's source node is one of these (an anchor imported
          from a join, e.g. [source(Phys) = target(D1)]) *)
  | To_nodes of Path.element list
      (** symmetric: constrains the pathway's target node *)

type stats = {
  mutable selects : int;   (** Select operators executed *)
  mutable extends : int;   (** bulk Extend rounds executed *)
  mutable frontier_peak : int;
}

val find :
  Backend_intf.conn ->
  tc:Time_constraint.t ->
  ?max_length:int ->
  ?seed:seed ->
  ?stats:stats ->
  ?anchor:[ `Cheapest | `Costliest ] ->
  Rpe.norm ->
  (Path.t list, string) result
(** Pathways satisfying the RPE, deduplicated, deterministically
    ordered. [max_length] caps the number of pathway elements (default:
    the RPE's own {!Rpe.max_length}, at most 64). Under a [Range]
    constraint every returned pathway carries its maximal validity
    interval set. [anchor] (default [`Cheapest]) selects which anchor
    candidate drives evaluation — [`Costliest] exists for the anchor
    ablation experiment. *)

val new_stats : unit -> stats

module Time_constraint = Nepal_temporal.Time_constraint
module Interval_set = Nepal_temporal.Interval_set
module Schema = Nepal_schema.Schema
module Rpe = Nepal_rpe.Rpe
module Nfa = Nepal_rpe.Nfa
module Anchor = Nepal_rpe.Anchor
module Predicate = Nepal_rpe.Predicate
open Backend_intf

type seed =
  | Anywhere
  | From_nodes of Path.element list
  | To_nodes of Path.element list

type stats = {
  mutable selects : int;
  mutable extends : int;
  mutable frontier_peak : int;
}

let new_stats () = { selects = 0; extends = 0; frontier_peak = 0 }

let ( let* ) = Result.bind

let kind_of_for sch (a : Rpe.atom) =
  match Rpe.atom_kind sch a with
  | Some Schema.Node_kind -> Some `Node
  | Some Schema.Edge_kind -> Some `Edge
  | None -> None

(* A partial pathway during one directional walk. [rev_elements] is in
   walk order reversed (frontier first); [valid] tracks the running
   interval-set intersection under Range constraints. *)
type partial = {
  rev_elements : Path.element list;
  states : Nfa.states;
  visited : int list;
  valid : Interval_set.t option;
}

(* Does the element satisfy the atom under the constraint? Under Range
   the predicate may have held in a non-latest version, so presence is
   consulted. *)
let element_matches conn ~tc sch (elem : Path.element) (a : Rpe.atom) =
  let kind_ok =
    match Rpe.atom_kind sch a with
    | Some Schema.Node_kind -> elem.Path.is_node
    | Some Schema.Edge_kind -> not elem.Path.is_node
    | None -> false
  in
  kind_ok
  &&
  match tc with
  | Time_constraint.Snapshot | Time_constraint.At _ ->
      Rpe.atom_matches sch a ~cls:elem.Path.cls ~fields:elem.Path.fields
  | Time_constraint.Range (w0, w1) ->
      Schema.is_subclass sch ~sub:elem.Path.cls ~sup:a.Rpe.cls
      && not
           (Interval_set.is_empty
              (presence conn ~uid:elem.Path.uid ~window:(w0, w1)
                 ~pred:(Some (fun fields -> Predicate.eval a.Rpe.pred fields))))

(* The element's own contribution to the pathway validity set: the
   union of the presence sets of the atoms it matched (or plain
   existence when it was consumed by a skip). *)
let element_validity conn ~tc (elem : Path.element) matched_atoms skipped =
  match tc with
  | Time_constraint.Snapshot | Time_constraint.At _ -> None
  | Time_constraint.Range (w0, w1) ->
      let sets =
        (if skipped then
           [ presence conn ~uid:elem.Path.uid ~window:(w0, w1) ~pred:None ]
         else [])
        @ List.map
            (fun (a : Rpe.atom) ->
              presence conn ~uid:elem.Path.uid ~window:(w0, w1)
                ~pred:(Some (fun fields -> Predicate.eval a.Rpe.pred fields)))
            matched_atoms
      in
      Some (List.fold_left Interval_set.union Interval_set.empty sets)

let combine_validity a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (Interval_set.inter x y)

(* Under Range, a pathway qualifies when its (maximal) validity set
   overlaps the query window. *)
let validity_ok ~tc v =
  match tc with
  | Time_constraint.Range (w0, w1) -> (
      match v with
      | Some s ->
          not
            (Interval_set.is_empty
               (Interval_set.inter s
                  (Interval_set.singleton (Nepal_temporal.Interval.between w0 w1))))
      | None -> false)
  | _ -> true

(* Advance one partial over one candidate element. *)
let advance conn ~tc sch nfa partial (elem : Path.element) =
  if List.mem elem.Path.uid partial.visited then None
  else
    let matched = ref [] in
    let matches a =
      let ok = element_matches conn ~tc sch elem a in
      if ok then matched := a :: !matched;
      ok
    in
    let states' = Nfa.step nfa ~matches ~is_node:elem.Path.is_node partial.states in
    if states' = [] then None
    else
      (* Whether a Skip transition could have consumed this element: it
         did iff a kind-compatible skip left the previous state set. *)
      let skipped = Nfa.can_skip nfa ~is_node:elem.Path.is_node partial.states in
      let valid' =
        combine_validity partial.valid
          (element_validity conn ~tc elem !matched skipped)
      in
      if not (validity_ok ~tc valid') then None
      else
        Some
          {
            rev_elements = elem :: partial.rev_elements;
            states = states';
            visited = elem.Path.uid :: partial.visited;
            valid = valid';
          }

(* One directional walk from a set of start elements. Returns, for each
   start, the accepted element sequences (in walk order, starting with
   the start element) paired with their validity sets. *)
let walk conn ~tc ~dir ~max_length ~stats nfa (starts : Path.element list) =
  let sch = conn_schema conn in
  let init (elem : Path.element) =
    let matched = ref [] in
    let matches a =
      let ok = element_matches conn ~tc sch elem a in
      if ok then matched := a :: !matched;
      ok
    in
    let start_states = Nfa.start nfa in
    let states = Nfa.step nfa ~matches ~is_node:elem.Path.is_node start_states in
    if states = [] then None
    else
      let skipped = Nfa.can_skip nfa ~is_node:elem.Path.is_node start_states in
      let valid = element_validity conn ~tc elem !matched skipped in
      if not (validity_ok ~tc valid) then None
      else
        Some
          {
            rev_elements = [ elem ];
            states;
            visited = [ elem.Path.uid ];
            valid;
          }
  in
  let accepted = ref [] in
  let emit p =
    match p.rev_elements with
    | last :: _ when last.Path.is_node && Nfa.accepting nfa p.states ->
        accepted := (List.rev p.rev_elements, p.valid) :: !accepted
    | _ -> ()
  in
  let frontier = ref (List.filter_map init starts) in
  List.iter emit !frontier;
  let rounds = ref 1 in
  while !frontier <> [] && !rounds < max_length do
    incr rounds;
    stats.extends <- stats.extends + 1;
    stats.frontier_peak <- max stats.frontier_peak (List.length !frontier);
    let parts = Array.of_list !frontier in
    let items =
      Array.to_list
        (Array.mapi
           (fun i p ->
             match p.rev_elements with
             | frontier_elem :: _ ->
                 { item_id = i; frontier = frontier_elem; visited = p.visited }
             | [] -> assert false)
           parts)
    in
    let spec =
      (* Deduplicate: thousands of partials share the same few atoms,
         and backends check candidates against every listed atom. *)
      let seen = Hashtbl.create 8 in
      let atoms = ref [] in
      Array.iter
        (fun p ->
          List.iter
            (fun a ->
              if not (Hashtbl.mem seen a) then begin
                Hashtbl.replace seen a ();
                atoms := a :: !atoms
              end)
            (Nfa.outgoing_atoms nfa p.states))
        parts;
      let with_skip =
        Array.exists
          (fun p ->
            match p.rev_elements with
            | frontier :: _ ->
                Nfa.can_skip nfa ~is_node:(not frontier.Path.is_node) p.states
            | [] -> false)
          parts
      in
      { atoms = !atoms; with_skip }
    in
    let extensions = bulk_extend conn ~tc ~dir ~spec items in
    let next = ref [] in
    List.iter
      (fun (i, elem) ->
        match advance conn ~tc sch nfa parts.(i) elem with
        | Some p ->
            emit p;
            next := p :: !next
        | None -> ())
      extensions;
    frontier := !next
  done;
  !accepted

let seq_opt parts =
  match List.filter_map Fun.id parts with
  | [] -> None
  | [ one ] -> Some one
  | many -> Some (Rpe.N_seq many)

let dedup_paths paths =
  let tbl = Hashtbl.create 64 in
  List.filter
    (fun p ->
      let k = Path.key p in
      if Hashtbl.mem tbl k then false
      else begin
        Hashtbl.replace tbl k ();
        true
      end)
    paths
  |> List.sort Path.compare

(* Evaluate one anchor split: Select the anchor, then extend forwards
   through (anchor :: after) and backwards through reverse (before ::
   anchor), and join the two sides on the shared anchor element. *)
let eval_split conn ~tc ~max_length ~stats (split : Anchor.split) =
  let anchor_atom = split.Anchor.anchor in
  stats.selects <- stats.selects + 1;
  let anchors = select_atom conn ~tc anchor_atom in
  if anchors = [] then []
  else begin
    let fwd_rpe =
      match seq_opt [ Some (Rpe.N_atom anchor_atom); split.Anchor.after ] with
      | Some r -> r
      | None -> assert false
    in
    let bwd_rpe =
      match
        seq_opt
          [ Some (Rpe.N_atom anchor_atom);
            Option.map Rpe.reverse split.Anchor.before ]
      with
      | Some r -> r
      | None -> assert false
    in
    let kind_of = kind_of_for (conn_schema conn) in
    let fwd_nfa = Nfa.compile ~lead_skip:false ~trail_skip:true ~kind_of fwd_rpe in
    let bwd_nfa = Nfa.compile ~lead_skip:false ~trail_skip:true ~kind_of bwd_rpe in
    let fwd = walk conn ~tc ~dir:Fwd ~max_length ~stats fwd_nfa anchors in
    let bwd = walk conn ~tc ~dir:Bwd ~max_length ~stats bwd_nfa anchors in
    (* Group by anchor uid. *)
    let by_anchor side =
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (elems, valid) ->
          match elems with
          | anchor :: _ -> Hashtbl.add tbl anchor.Path.uid (elems, valid)
          | [] -> ())
        side;
      tbl
    in
    let fwd_tbl = by_anchor fwd and bwd_tbl = by_anchor bwd in
    let results = ref [] in
    Hashtbl.iter
      (fun anchor_uid (bwd_elems, bwd_valid) ->
        let bwd_tail = List.tl bwd_elems in
        List.iter
          (fun (fwd_elems, fwd_valid) ->
            let fwd_tail = List.tl fwd_elems in
            (* Elements must be disjoint across the two sides. *)
            let bwd_uids = List.map (fun e -> e.Path.uid) bwd_tail in
            let fwd_uids = List.map (fun e -> e.Path.uid) fwd_tail in
            let overlap = List.exists (fun u -> List.mem u fwd_uids) bwd_uids in
            if not overlap then begin
              let elements = List.rev bwd_tail @ fwd_elems in
              if List.length elements <= max_length then begin
                let valid =
                  match tc with
                  | Time_constraint.Range _ ->
                      combine_validity bwd_valid fwd_valid
                  | _ -> None
                in
                let p = { Path.elements; valid } in
                if Path.well_formed p && validity_ok ~tc valid then
                  results := p :: !results
              end
            end)
          (Hashtbl.find_all fwd_tbl anchor_uid))
      bwd_tbl;
    !results
  end

let find conn ~tc ?max_length ?(seed = Anywhere) ?stats ?(anchor = `Cheapest) norm =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let default_cap = min (Rpe.max_length norm) 64 in
  let max_length =
    match max_length with Some m -> min m 64 | None -> default_cap
  in
  match seed with
  | Anywhere ->
      let cost a = estimate_atom conn a in
      let* selection =
        match anchor with
        | `Cheapest -> Anchor.select ~cost norm
        | `Costliest -> (
            match Anchor.enumerate ~cost norm with
            | [] -> Anchor.select ~cost norm (* reuse its error message *)
            | first :: rest ->
                Ok
                  (List.fold_left
                     (fun acc c -> if c.Anchor.cost > acc.Anchor.cost then c else acc)
                     first rest))
      in
      let paths =
        List.concat_map (eval_split conn ~tc ~max_length ~stats) selection.Anchor.splits
      in
      Ok (dedup_paths paths)
  | From_nodes seeds ->
      let kind_of = kind_of_for (conn_schema conn) in
      let nfa = Nfa.compile ~lead_skip:true ~trail_skip:true ~kind_of norm in
      let seeds = List.filter (fun e -> e.Path.is_node) seeds in
      let accepted = walk conn ~tc ~dir:Fwd ~max_length ~stats nfa seeds in
      let paths =
        List.filter_map
          (fun (elems, valid) ->
            let p = { Path.elements = elems; valid } in
            if Path.well_formed p && validity_ok ~tc valid then Some p else None)
          accepted
      in
      let paths =
        match tc with
        | Time_constraint.Range _ -> paths
        | _ -> List.map (fun p -> { p with Path.valid = None }) paths
      in
      Ok (dedup_paths paths)
  | To_nodes seeds ->
      let kind_of = kind_of_for (conn_schema conn) in
      let nfa =
        Nfa.compile ~lead_skip:true ~trail_skip:true ~kind_of (Rpe.reverse norm)
      in
      let seeds = List.filter (fun e -> e.Path.is_node) seeds in
      let accepted = walk conn ~tc ~dir:Bwd ~max_length ~stats nfa seeds in
      let paths =
        List.filter_map
          (fun (elems, valid) ->
            let p = { Path.elements = List.rev elems; valid } in
            if Path.well_formed p && validity_ok ~tc valid then Some p else None)
          accepted
      in
      let paths =
        match tc with
        | Time_constraint.Range _ -> paths
        | _ -> List.map (fun p -> { p with Path.valid = None }) paths
      in
      Ok (dedup_paths paths)

lib/query/query_ast.ml: Buffer List Nepal_rpe Nepal_schema Nepal_temporal Printf String

lib/query/eval_rpe.mli: Backend_intf Nepal_rpe Nepal_temporal Path

lib/query/native_backend.ml: Backend_intf Float List Nepal_rpe Nepal_schema Nepal_store Nepal_temporal Nepal_util Option Path

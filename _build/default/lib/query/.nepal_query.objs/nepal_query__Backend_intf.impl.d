lib/query/backend_intf.ml: Nepal_rpe Nepal_schema Nepal_temporal Nepal_util Path

lib/query/path.ml: Format List Nepal_schema Nepal_temporal Nepal_util Printf Stdlib String

lib/query/eval_rpe.ml: Array Backend_intf Fun Hashtbl List Nepal_rpe Nepal_schema Nepal_temporal Option Path Result

lib/query/query_parser.ml: List Nepal_rpe Nepal_schema Nepal_temporal Option Query_ast Result String

lib/query/temporal_agg.ml: Backend_intf Eval_rpe Int List Nepal_rpe Nepal_temporal Path Result

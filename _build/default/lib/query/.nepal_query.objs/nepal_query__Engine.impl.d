lib/query/engine.ml: Backend_intf Eval_rpe Float Format Hashtbl Int List Nepal_rpe Nepal_schema Nepal_temporal Nepal_util Path Printf Query_ast Query_parser Result String

lib/query/temporal_agg.mli: Backend_intf Nepal_rpe Nepal_temporal

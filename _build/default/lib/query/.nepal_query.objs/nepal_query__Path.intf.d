lib/query/path.mli: Format Nepal_schema Nepal_temporal Nepal_util

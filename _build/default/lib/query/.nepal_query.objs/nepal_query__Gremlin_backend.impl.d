lib/query/gremlin_backend.ml: Backend_intf Float Hashtbl Int List Nepal_gremlin Nepal_relational Nepal_rpe Nepal_schema Nepal_store Nepal_temporal Nepal_util Option Path String

lib/query/connect.ml: Backend_intf Gremlin_backend Native_backend Nepal_store Relational_backend

lib/query/relational_backend.ml: Array Backend_intf Float Hashtbl Int List Nepal_relational Nepal_rpe Nepal_schema Nepal_store Nepal_temporal Nepal_util Option Path Printf Result String

lib/query/engine.mli: Backend_intf Eval_rpe Format Nepal_schema Nepal_temporal Nepal_util Path Query_ast Stdlib

lib/query/query_parser.mli: Query_ast

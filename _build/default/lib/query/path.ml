module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap
module Interval_set = Nepal_temporal.Interval_set

type element = {
  uid : int;
  cls : string;
  fields : Value.t Strmap.t;
  is_node : bool;
}

type t = { elements : element list; valid : Interval_set.t option }

let well_formed t =
  match t.elements with
  | [] -> false
  | first :: _ ->
      let rec alternates expect_node = function
        | [] -> true
        | e :: rest -> e.is_node = expect_node && alternates (not expect_node) rest
      in
      let last = List.nth t.elements (List.length t.elements - 1) in
      first.is_node && last.is_node && alternates true t.elements

let source t =
  match t.elements with
  | e :: _ -> e
  | [] -> invalid_arg "Path.source: empty pathway"

let target t =
  match List.rev t.elements with
  | e :: _ -> e
  | [] -> invalid_arg "Path.target: empty pathway"

let edges t = List.filter (fun e -> not e.is_node) t.elements
let nodes t = List.filter (fun e -> e.is_node) t.elements
let length t = List.length (edges t)

let key t = List.map (fun e -> e.uid) t.elements

let field e name = Strmap.find_opt_or name ~default:Value.Null e.fields

let compare a b = Stdlib.compare (key a) (key b)
let equal a b = key a = key b

let to_string t =
  let elem e =
    if e.is_node then Printf.sprintf "(%s#%d)" e.cls e.uid
    else Printf.sprintf "-[%s#%d]->" e.cls e.uid
  in
  let body = String.concat "" (List.map elem t.elements) in
  match t.valid with
  | None -> body
  | Some v -> body ^ " valid " ^ Format.asprintf "%a" Interval_set.pp v

let pp ppf t = Format.pp_print_string ppf (to_string t)

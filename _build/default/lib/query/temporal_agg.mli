(** The targeted temporal aggregation queries of Section 4:
    [First Time When Exists], [Last Time When Exists], [When Exists],
    and path evolution. All are answered from a time-range query's
    results, as the paper notes they can be. *)

module Time_point = Nepal_temporal.Time_point
module Interval_set = Nepal_temporal.Interval_set
module Time_constraint = Nepal_temporal.Time_constraint
module Rpe = Nepal_rpe.Rpe

val when_exists :
  Backend_intf.conn ->
  window:Time_point.t * Time_point.t ->
  ?max_length:int ->
  Rpe.norm ->
  (Interval_set.t, string) result
(** The union of validity intervals over all satisfying pathways: when
    (within the window) did {e some} satisfying pathway exist? *)

val first_time_when_exists :
  Backend_intf.conn ->
  window:Time_point.t * Time_point.t ->
  ?max_length:int ->
  Rpe.norm ->
  (Time_point.t option, string) result

val last_time_when_exists :
  Backend_intf.conn ->
  window:Time_point.t * Time_point.t ->
  ?max_length:int ->
  Rpe.norm ->
  ([ `Never | `Still_exists | `Ended of Time_point.t ], string) result

type evolution_step = {
  at : Time_point.t;
  element_uid : int;
  change : [ `Appeared | `Changed | `Disappeared ];
}

val path_evolution :
  Backend_intf.conn ->
  window:Time_point.t * Time_point.t ->
  int list ->
  evolution_step list
(** Track the version changes of a specific pathway (given by its node
    and edge uids) within the window — the visualization-support query
    of Section 4. Steps are ordered by time. *)

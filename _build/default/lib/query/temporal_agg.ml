module Time_point = Nepal_temporal.Time_point
module Time_constraint = Nepal_temporal.Time_constraint
module Interval = Nepal_temporal.Interval
module Interval_set = Nepal_temporal.Interval_set
module Rpe = Nepal_rpe.Rpe

let ( let* ) = Result.bind

let when_exists conn ~window:(a, b) ?max_length norm =
  let tc = Time_constraint.range a b in
  let* paths = Eval_rpe.find conn ~tc ?max_length norm in
  Ok
    (List.fold_left
       (fun acc (p : Path.t) ->
         match p.valid with
         | Some v -> Interval_set.union acc v
         | None -> acc)
       Interval_set.empty paths)

let first_time_when_exists conn ~window ?max_length norm =
  let* s = when_exists conn ~window ?max_length norm in
  Ok (Interval_set.first_start s)

let last_time_when_exists conn ~window ?max_length norm =
  let* s = when_exists conn ~window ?max_length norm in
  Ok (Interval_set.last_moment s)

type evolution_step = {
  at : Time_point.t;
  element_uid : int;
  change : [ `Appeared | `Changed | `Disappeared ];
}

let path_evolution conn ~window:(a, b) uids =
  let steps =
    List.concat_map
      (fun uid ->
        let boundaries = Backend_intf.version_boundaries conn ~uid ~window:(a, b) in
        List.filter_map
          (fun at ->
            (* Classify by existence just before vs at the boundary. *)
            let existed_before =
              Backend_intf.element_by_uid conn
                ~tc:(Time_constraint.at (Time_point.add_seconds at (-1e-6)))
                uid
              <> None
            in
            let exists_at =
              Backend_intf.element_by_uid conn ~tc:(Time_constraint.at at) uid
              <> None
            in
            match (existed_before, exists_at) with
            | false, true -> Some { at; element_uid = uid; change = `Appeared }
            | true, true -> Some { at; element_uid = uid; change = `Changed }
            | true, false -> Some { at; element_uid = uid; change = `Disappeared }
            | false, false -> None)
          boundaries)
      uids
  in
  List.sort
    (fun s1 s2 ->
      match Time_point.compare s1.at s2.at with
      | 0 -> Int.compare s1.element_uid s2.element_uid
      | c -> c)
    steps

(** The PostgreSQL-style target (Section 5.2).

    Each Nepal node/edge class becomes a temporal table pair (current +
    history) in the mini relational engine, INHERITing from its parent
    class's table exactly as the paper's

    {v
    Create Table VM( ... ) INHERITS(Node);
    Create Table VMWare( ... ) INHERITS(VM);
    v}

    Node tables carry [id_]; edge tables add [source_id_] and
    [target_id_]; a [uids] directory table enforces uid uniqueness and
    records each uid's concrete class. Extend operators run as hash
    joins between a temp table of partial paths and the relevant class
    tables — irrelevant edge classes are never touched, which is the
    mechanism behind the Section 6 re-classing speedup. The SQL text of
    every plan executed is available from {!take_log}. *)

module Schema = Nepal_schema.Schema
module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap
module Time_point = Nepal_temporal.Time_point

type t

val create : Schema.t -> (t, string) result
(** Builds the full DDL for the schema's class hierarchy. *)

val create_exn : Schema.t -> t

val database : t -> Nepal_relational.Database.t
(** The underlying engine, for inspection and ad-hoc relational
    queries over the same data (the paper's "graph data can be readily
    mixed with relational data"). *)

(** {1 Mutations} (same contract as {!Nepal_store.Graph_store}) *)

val insert_node :
  t -> at:Time_point.t -> cls:string -> fields:Value.t Strmap.t ->
  (int, string) result

val insert_edge :
  t -> at:Time_point.t -> cls:string -> src:int -> dst:int ->
  fields:Value.t Strmap.t -> (int, string) result

val update :
  t -> at:Time_point.t -> int -> fields:Value.t Strmap.t -> (unit, string) result

val delete : t -> at:Time_point.t -> ?cascade:bool -> int -> (unit, string) result

val mirror_store : t -> Nepal_store.Graph_store.t -> (unit, string) result
(** Replay every version of every entity of a native store into the
    relational representation, preserving uids and transaction times.
    The store must use the same schema. *)

(** {1 Storage accounting} *)

val stored_rows : t -> int
(** All rows across current and history tables (excluding temp). *)

val take_log : t -> string list
(** SQL statements executed since the last call, oldest first. *)

(** {1 Backend interface} *)

include Backend_intf.S with type t := t

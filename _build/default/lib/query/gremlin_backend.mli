(** The Gremlin/TinkerPop-style target (Section 5.2).

    Classes are encoded in element labels as the full inheritance path
    ([Node:VM:VMWare]); strongly-typed concept matching becomes label
    prefix matching. Transaction time is a bolt-on: each element's
    [sys_period] property holds its overall existence interval (pushed
    into traversals as period steps), while field-version history lives
    in a side store consulted for temporal predicates — mirroring the
    property-versioning bolt-ons the paper cites. The Gremlin text of
    every traversal executed is available from {!take_log}. *)

module Schema = Nepal_schema.Schema
module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap
module Time_point = Nepal_temporal.Time_point

type t

val create : Schema.t -> t
val graph : t -> Nepal_gremlin.Pgraph.t

val mirror_store : t -> Nepal_store.Graph_store.t -> (unit, string) result
(** Load every entity (and its version history) from a native store,
    preserving uids. *)

val take_log : t -> string list

val element_count : t -> int

include Backend_intf.S with type t := t

(** Field types of the Nepal schema language.

    Scalars, references to named composite [data_types], and the three
    container kinds the paper lists (list, set, map). *)

type t =
  | T_int
  | T_float
  | T_bool
  | T_string
  | T_ip           (** IPv4 address *)
  | T_time         (** transaction-time instant *)
  | T_data of string  (** named composite data type *)
  | T_list of t
  | T_set of t
  | T_map of t * t

val equal : t -> t -> bool

val data_refs : t -> string list
(** Names of all composite data types referenced (transitively through
    containers) — used for composition-DAG acyclicity checking. *)

val of_string : string -> (t, string) result
(** Parse the textual form used in schema files: [int], [float], [bool],
    [string], [ip], [time], [list<T>], [set<T>], [map<K,V>], or a data
    type name. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

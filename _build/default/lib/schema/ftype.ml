type t =
  | T_int
  | T_float
  | T_bool
  | T_string
  | T_ip
  | T_time
  | T_data of string
  | T_list of t
  | T_set of t
  | T_map of t * t

let rec equal a b =
  match (a, b) with
  | T_int, T_int | T_float, T_float | T_bool, T_bool -> true
  | T_string, T_string | T_ip, T_ip | T_time, T_time -> true
  | T_data x, T_data y -> String.equal x y
  | T_list x, T_list y | T_set x, T_set y -> equal x y
  | T_map (k, v), T_map (k', v') -> equal k k' && equal v v'
  | ( ( T_int | T_float | T_bool | T_string | T_ip | T_time | T_data _
      | T_list _ | T_set _ | T_map _ ),
      _ ) ->
      false

let rec data_refs = function
  | T_int | T_float | T_bool | T_string | T_ip | T_time -> []
  | T_data n -> [ n ]
  | T_list t | T_set t -> data_refs t
  | T_map (k, v) -> data_refs k @ data_refs v

let rec to_string = function
  | T_int -> "int"
  | T_float -> "float"
  | T_bool -> "bool"
  | T_string -> "string"
  | T_ip -> "ip"
  | T_time -> "time"
  | T_data n -> n
  | T_list t -> Printf.sprintf "list<%s>" (to_string t)
  | T_set t -> Printf.sprintf "set<%s>" (to_string t)
  | T_map (k, v) -> Printf.sprintf "map<%s,%s>" (to_string k) (to_string v)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Textual type parser for schema files. Accepts nested containers. *)
let of_string s =
  let n = String.length s in
  let err msg = Error (Printf.sprintf "type %S: %s" s msg) in
  (* Parse starting at [i]; returns (type, next position). *)
  let rec parse i =
    let rec ident_end j =
      if j < n && (s.[j] <> '<' && s.[j] <> '>' && s.[j] <> ',') then
        ident_end (j + 1)
      else j
    in
    let j = ident_end i in
    let name = String.trim (String.sub s i (j - i)) in
    if name = "" then Error "empty type name"
    else if j < n && s.[j] = '<' then
      match name with
      | "list" | "set" -> (
          match parse (j + 1) with
          | Error e -> Error e
          | Ok (inner, k) ->
              if k < n && s.[k] = '>' then
                let t = if name = "list" then T_list inner else T_set inner in
                Ok (t, k + 1)
              else Error "expected '>'")
      | "map" -> (
          match parse (j + 1) with
          | Error e -> Error e
          | Ok (kt, k) ->
              if k < n && s.[k] = ',' then
                match parse (k + 1) with
                | Error e -> Error e
                | Ok (vt, k2) ->
                    if k2 < n && s.[k2] = '>' then Ok (T_map (kt, vt), k2 + 1)
                    else Error "expected '>'"
              else Error "expected ',' in map type")
      | _ -> Error (Printf.sprintf "unknown container %S" name)
    else
      let t =
        match name with
        | "int" | "integer" -> T_int
        | "float" | "double" -> T_float
        | "bool" | "boolean" -> T_bool
        | "string" | "text" -> T_string
        | "ip" | "ip_address" -> T_ip
        | "time" | "timestamp" -> T_time
        | other -> T_data other
      in
      Ok (t, j)
  in
  match parse 0 with
  | Error e -> err e
  | Ok (t, k) ->
      if String.trim (String.sub s k (n - k)) = "" then Ok t
      else err "trailing characters"

lib/schema/ftype.ml: Format Printf String

lib/schema/tosca.ml: Buffer Ftype List Printf Result Schema String

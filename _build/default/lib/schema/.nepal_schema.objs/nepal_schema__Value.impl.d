lib/schema/value.ml: Bool Float Format Hashtbl Int Int32 List Nepal_temporal Nepal_util Printf String

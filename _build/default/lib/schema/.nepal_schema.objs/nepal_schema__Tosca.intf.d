lib/schema/tosca.mli: Schema

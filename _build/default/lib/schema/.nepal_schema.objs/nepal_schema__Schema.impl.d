lib/schema/schema.ml: Format Ftype Hashtbl List Nepal_util Option Printf Result Seq String Value

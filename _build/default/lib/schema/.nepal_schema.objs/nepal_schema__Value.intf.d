lib/schema/value.mli: Format Nepal_temporal Nepal_util

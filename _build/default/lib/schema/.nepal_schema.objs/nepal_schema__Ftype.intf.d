lib/schema/ftype.mli: Format

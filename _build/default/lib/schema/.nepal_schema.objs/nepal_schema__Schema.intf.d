lib/schema/schema.mli: Format Ftype Nepal_util Value

(** The Nepal schema: a single-rooted class hierarchy of strongly-typed
    node and edge concepts, composite data types, and allowed-edge
    (endpoint) constraints in the style of TOSCA capability types
    (Figure 3 of the paper).

    The three root classes ["Any"], ["Node"] and ["Edge"] always exist;
    every user class derives (directly or transitively) from ["Node"] or
    ["Edge"]. Subclasses inherit all parent fields and may add new ones;
    redefining an inherited field is rejected. *)

type kind = Node_kind | Edge_kind

type class_decl = {
  name : string;
  parent : string;  (** "Node", "Edge", or another declared class *)
  fields : (string * Ftype.t) list;  (** own fields, in declaration order *)
  abstract : bool;
      (** abstract classes structure the hierarchy but records may not be
          instantiated at them directly *)
  cardinality_hint : int option;
      (** schema hint used by anchor costing when no statistics exist *)
}

val class_decl :
  ?fields:(string * Ftype.t) list ->
  ?abstract:bool ->
  ?cardinality_hint:int ->
  parent:string ->
  string ->
  class_decl

type data_decl = {
  dname : string;
  dparent : string option;  (** data types also support inheritance *)
  dfields : (string * Ftype.t) list;
}

val data_decl :
  ?parent:string -> fields:(string * Ftype.t) list -> string -> data_decl

type edge_rule = { edge : string; src : string; dst : string }
(** "an edge of class [edge] may run from a node of class [src] to a
    node of class [dst]" — satisfied by any subclasses thereof. *)

type t

val create :
  ?data_types:data_decl list ->
  ?edge_rules:edge_rule list ->
  class_decl list ->
  (t, string) result
(** Validates: unique names; parents exist and respect node/edge
    namespaces; no inherited-field shadowing; acyclic data-type
    composition DAG; edge rules reference an edge class and two node
    classes. *)

val create_exn :
  ?data_types:data_decl list ->
  ?edge_rules:edge_rule list ->
  class_decl list ->
  t

(** {1 Hierarchy interrogation} *)

val mem_class : t -> string -> bool
val kind_of : t -> string -> kind option
(** [None] for "Any" or unknown names. *)

val is_abstract : t -> string -> bool
val parent_of : t -> string -> string option
val ancestors : t -> string -> string list
(** Root-first inheritance path, e.g. [\["Any"; "Node"; "VM"; "VMWare"\]].
    @raise Not_found for unknown classes. *)

val inheritance_label : t -> string -> string
(** The Gremlin label of the paper: path without "Any", colon-joined,
    e.g. ["Node:VM:VMWare"]. *)

val is_subclass : t -> sub:string -> sup:string -> bool
(** Reflexive-transitive. *)

val subclasses : t -> string -> string list
(** All (transitive) subclasses including the class itself, in
    deterministic order. *)

val concrete_subclasses : t -> string -> string list

val least_common_ancestor : t -> string list -> string option
(** Deepest common ancestor of a non-empty class list ("Any" possible). *)

val all_classes : t -> string list
val node_classes : t -> string list
val edge_classes : t -> string list

(** {1 Fields} *)

val fields_of : t -> string -> (string * Ftype.t) list
(** Inherited-then-own, in declaration order.
    @raise Not_found for unknown classes. *)

val field_type : t -> string -> string -> Ftype.t option
(** [field_type t cls field]. *)

val cardinality_hint : t -> string -> int option
(** The hint on the class or the nearest ancestor carrying one. *)

(** {1 Data types} *)

val data_type_fields : t -> string -> (string * Ftype.t) list option

val data_type_names : t -> string list

(** {1 Edge-endpoint constraints} *)

val edge_rules : t -> edge_rule list

val edge_allowed : t -> edge:string -> src:string -> dst:string -> bool
(** Inheritance-aware: true when some declared rule generalizes the
    triple. With no rules declared for any ancestor of [edge], the edge
    class is unconstrained (permissive default, as in the paper's
    legacy-graph loading). *)

(** {1 Type checking} *)

val typecheck_value : t -> Ftype.t -> Value.t -> (unit, string) result
(** [Null] is admitted at any type. *)

val typecheck_record :
  t -> string -> Value.t Nepal_util.Strmap.t -> (Value.t Nepal_util.Strmap.t, string) result
(** Checks a record against a concrete class: unknown fields rejected,
    declared-but-absent fields filled with [Null], values type-checked.
    Returns the completed record. *)

val pp : Format.formatter -> t -> unit

(* A tiny YAML-subset reader and its interpretation as a Nepal schema. *)

type yval =
  | Scalar of string
  | Mapping of (string * yval) list
  | Sequence of yval list

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Lexical layer: strip comments/blank lines, compute indentation.     *)

type line = { indent : int; body : string; lineno : int }

let prepare_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment s =
    (* A # begins a comment unless inside single quotes. *)
    let n = String.length s in
    let rec find i in_quote =
      if i >= n then n
      else
        match s.[i] with
        | '\'' -> find (i + 1) (not in_quote)
        | '#' when not in_quote -> i
        | _ -> find (i + 1) in_quote
    in
    String.sub s 0 (find 0 false)
  in
  List.mapi (fun i s -> (i + 1, strip_comment s)) raw
  |> List.filter_map (fun (lineno, s) ->
         let trimmed = String.trim s in
         if trimmed = "" then None
         else
           let rec indent_of i =
             if i < String.length s && s.[i] = ' ' then indent_of (i + 1) else i
           in
           Some { indent = indent_of 0; body = trimmed; lineno })

(* ------------------------------------------------------------------ *)
(* Recursive block parser.                                             *)

let split_key_value body lineno =
  match String.index_opt body ':' with
  | None -> Error (Printf.sprintf "line %d: expected 'key: value'" lineno)
  | Some i ->
      let key = String.trim (String.sub body 0 i) in
      let v = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
      if key = "" then Error (Printf.sprintf "line %d: empty key" lineno)
      else Ok (key, v)

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then String.sub s 1 (n - 2)
  else s

(* Parse the block of lines at indentation >= [level]; the first line
   determines whether it is a mapping or a sequence. *)
let rec parse_block lines level =
  match lines with
  | [] -> Ok (Mapping [], [])
  | first :: _ when first.indent < level -> Ok (Mapping [], lines)
  | first :: _ ->
      if String.length first.body >= 1 && first.body.[0] = '-' then
        parse_sequence lines first.indent []
      else parse_mapping lines first.indent []

and parse_mapping lines level acc =
  match lines with
  | [] -> Ok (Mapping (List.rev acc), [])
  | l :: rest when l.indent = level -> (
      let* key, v = split_key_value l.body l.lineno in
      if v = "" then
        (* Nested block (or empty mapping). *)
        match rest with
        | next :: _ when next.indent > level ->
            let* nested, remaining = parse_block rest (level + 1) in
            parse_mapping remaining level ((key, nested) :: acc)
        | _ -> parse_mapping rest level ((key, Mapping []) :: acc)
      else if v = "{}" then
        parse_mapping rest level ((key, Mapping []) :: acc)
      else parse_mapping rest level ((key, Scalar (unquote v)) :: acc))
  | l :: _ when l.indent > level ->
      Error (Printf.sprintf "line %d: unexpected indentation" l.lineno)
  | _ -> Ok (Mapping (List.rev acc), lines)

and parse_sequence lines level acc =
  match lines with
  | l :: rest when l.indent = level && String.length l.body >= 1 && l.body.[0] = '-'
    ->
      let item_body = String.trim (String.sub l.body 1 (String.length l.body - 1)) in
      if item_body = "" then
        let* nested, remaining = parse_block rest (level + 1) in
        parse_sequence remaining level (nested :: acc)
      else if String.contains item_body ':' then begin
        (* Inline first pair of a mapping item; subsequent keys are on
           following lines with deeper indentation. *)
        let* key, v = split_key_value item_body l.lineno in
        let item_indent = level + 2 in
        let inline =
          if v = "" then (key, Mapping []) else (key, Scalar (unquote v))
        in
        let* more, remaining =
          match rest with
          | next :: _ when next.indent >= item_indent ->
              parse_mapping rest next.indent []
          | _ -> Ok (Mapping [], rest)
        in
        match more with
        | Mapping pairs ->
            parse_sequence remaining level (Mapping (inline :: pairs) :: acc)
        | _ -> Error (Printf.sprintf "line %d: malformed sequence item" l.lineno)
      end
      else parse_sequence rest level (Scalar (unquote item_body) :: acc)
  | l :: _ when l.indent > level ->
      Error (Printf.sprintf "line %d: unexpected indentation" l.lineno)
  | _ -> Ok (Sequence (List.rev acc), lines)

let parse_document text =
  let lines = prepare_lines text in
  let* v, remaining = parse_block lines 0 in
  match remaining with
  | [] -> Ok v
  | l :: _ -> Error (Printf.sprintf "line %d: trailing content" l.lineno)

(* ------------------------------------------------------------------ *)
(* Interpretation as a Nepal schema.                                   *)

let mapping_of ~what = function
  | Mapping m -> Ok m
  | Scalar _ | Sequence _ -> Error (Printf.sprintf "%s: expected a mapping" what)

let scalar_of ~what = function
  | Scalar s -> Ok s
  | Mapping _ | Sequence _ -> Error (Printf.sprintf "%s: expected a scalar" what)

let parse_properties ~what v =
  let* pairs = mapping_of ~what v in
  let rec each acc = function
    | [] -> Ok (List.rev acc)
    | (fname, fv) :: rest ->
        let* tstr = scalar_of ~what:(what ^ "." ^ fname) fv in
        let* ft = Ftype.of_string tstr in
        each ((fname, ft) :: acc) rest
  in
  each [] pairs

let parse_class ~default_parent name v =
  let* pairs = mapping_of ~what:name v in
  let find k = List.assoc_opt k pairs in
  let* parent =
    match find "derived_from" with
    | None -> Ok default_parent
    | Some s -> scalar_of ~what:(name ^ ".derived_from") s
  in
  let* fields =
    match find "properties" with
    | None -> Ok []
    | Some p -> parse_properties ~what:(name ^ ".properties") p
  in
  let* abstract =
    match find "abstract" with
    | None -> Ok false
    | Some s ->
        let* b = scalar_of ~what:(name ^ ".abstract") s in
        Ok (b = "true")
  in
  let* hint =
    match find "cardinality_hint" with
    | None -> Ok None
    | Some s -> (
        let* h = scalar_of ~what:(name ^ ".cardinality_hint") s in
        match int_of_string_opt h with
        | Some v -> Ok (Some v)
        | None -> Error (name ^ ".cardinality_hint: expected an integer"))
  in
  let* endpoint_rules =
    match find "valid_endpoints" with
    | None -> Ok []
    | Some (Sequence items) ->
        let rec each acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest -> (
              let* m = mapping_of ~what:(name ^ ".valid_endpoints") item in
              match (List.assoc_opt "from" m, List.assoc_opt "to" m) with
              | Some (Scalar src), Some (Scalar dst) ->
                  each ({ Schema.edge = name; src; dst } :: acc) rest
              | _ ->
                  Error (name ^ ".valid_endpoints: items need 'from' and 'to'"))
        in
        each [] items
    | Some _ -> Error (name ^ ".valid_endpoints: expected a sequence")
  in
  Ok
    ( {
        Schema.name;
        parent;
        fields;
        abstract;
        cardinality_hint = hint;
      },
      endpoint_rules )

let parse_data_type name v =
  let* pairs = mapping_of ~what:name v in
  let find k = List.assoc_opt k pairs in
  let* parent =
    match find "derived_from" with
    | None -> Ok None
    | Some s ->
        let* p = scalar_of ~what:(name ^ ".derived_from") s in
        Ok (Some p)
  in
  let* fields =
    match find "properties" with
    | None -> Ok []
    | Some p -> parse_properties ~what:(name ^ ".properties") p
  in
  Ok { Schema.dname = name; dparent = parent; dfields = fields }

let parse text =
  let* doc = parse_document text in
  let* sections = mapping_of ~what:"document" doc in
  let get name = List.assoc_opt name sections in
  let parse_section ~default_parent = function
    | None -> Ok ([], [])
    | Some v ->
        let* entries = mapping_of ~what:"types section" v in
        let rec each classes rules = function
          | [] -> Ok (List.rev classes, List.rev rules)
          | (name, body) :: rest ->
              let* cls, rs = parse_class ~default_parent name body in
              each (cls :: classes) (List.rev_append rs rules) rest
        in
        each [] [] entries
  in
  let* node_classes, node_rules = parse_section ~default_parent:"Node" (get "node_types") in
  let* edge_classes, edge_rules = parse_section ~default_parent:"Edge" (get "edge_types") in
  let* data_types =
    match get "data_types" with
    | None -> Ok []
    | Some v ->
        let* entries = mapping_of ~what:"data_types" v in
        let rec each acc = function
          | [] -> Ok (List.rev acc)
          | (name, body) :: rest ->
              let* d = parse_data_type name body in
              each (d :: acc) rest
        in
        each [] entries
  in
  Schema.create ~data_types
    ~edge_rules:(node_rules @ edge_rules)
    (node_classes @ edge_classes)

let parse_exn text =
  match parse text with
  | Ok s -> s
  | Error e -> invalid_arg ("Tosca.parse_exn: " ^ e)

let render schema =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let render_fields indent fields =
    if fields <> [] then begin
      pf "%sproperties:\n" indent;
      List.iter
        (fun (f, ft) -> pf "%s  %s: %s\n" indent f (Ftype.to_string ft))
        fields
    end
  in
  let render_class kind name =
    (* Only user classes: skip roots. *)
    if name <> "Node" && name <> "Edge" then begin
      pf "  %s:\n" name;
      (match Schema.parent_of schema name with
      | Some p -> pf "    derived_from: %s\n" p
      | None -> ());
      if Schema.is_abstract schema name then pf "    abstract: true\n";
      (match Schema.cardinality_hint schema name with
      | Some h -> pf "    cardinality_hint: %d\n" h
      | None -> ());
      let own =
        (* Own fields = all fields minus parent's fields. *)
        let all = Schema.fields_of schema name in
        match Schema.parent_of schema name with
        | Some p when p <> "Any" ->
            let parent_fields = List.map fst (Schema.fields_of schema p) in
            List.filter (fun (f, _) -> not (List.mem f parent_fields)) all
        | _ -> all
      in
      render_fields "    " own;
      if kind = Schema.Edge_kind then begin
        let rules =
          List.filter
            (fun (r : Schema.edge_rule) -> r.edge = name)
            (Schema.edge_rules schema)
        in
        if rules <> [] then begin
          pf "    valid_endpoints:\n";
          List.iter
            (fun (r : Schema.edge_rule) ->
              pf "      - from: %s\n        to: %s\n" r.src r.dst)
            rules
        end
      end
    end
  in
  let data_names = Schema.data_type_names schema in
  if data_names <> [] then begin
    pf "data_types:\n";
    List.iter
      (fun dname ->
        pf "  %s:\n" dname;
        match Schema.data_type_fields schema dname with
        | Some fields -> render_fields "    " fields
        | None -> ())
      data_names
  end;
  let nodes = Schema.node_classes schema in
  let edges = Schema.edge_classes schema in
  if nodes <> [ "Node" ] then begin
    pf "node_types:\n";
    List.iter (render_class Schema.Node_kind) nodes
  end;
  if edges <> [ "Edge" ] then begin
    pf "edge_types:\n";
    List.iter (render_class Schema.Edge_kind) edges
  end;
  Buffer.contents buf

(** TOSCA-subset schema loader.

    The paper derives the Nepal schema language from the OASIS TOSCA
    standard ([data_types], [node_types], capability types). This module
    parses a YAML-like subset sufficient for describing Nepal schemas in
    text files and converts them to {!Schema.t}:

    {v
    data_types:
      routingTableEntry:
        properties:
          address: ip
          mask: int
          interface: string
    node_types:
      VM:
        derived_from: Container
        cardinality_hint: 1000
        properties:
          vm_id: int
          status: string
    edge_types:
      hosted_on:
        derived_from: Vertical
        valid_endpoints:
          - from: VM
            to: physical_server
    v}

    Supported YAML subset: two-space-multiple indentation, mappings,
    block lists of mappings ([- key: value]), scalars, [#] comments. *)

val parse : string -> (Schema.t, string) result
(** Parse a schema document. *)

val parse_exn : string -> Schema.t

val render : Schema.t -> string
(** Render a schema back to the textual format; [parse (render s)]
    yields a schema equivalent to [s]. *)

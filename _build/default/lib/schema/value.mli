(** Runtime values of node/edge fields.

    Values form a single universe with a total order so they can be used
    in indexes and predicates regardless of type; type discipline is
    enforced separately by {!Schema.typecheck_value}. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Ip of int32                    (** IPv4, big-endian *)
  | Time of Nepal_temporal.Time_point.t
  | List of t list
  | Vset of t list                 (** sorted, duplicate-free *)
  | Vmap of (t * t) list           (** sorted by key, unique keys *)
  | Data of string * t Nepal_util.Strmap.t
      (** composite data-type instance: type name + field values *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val vset : t list -> t
(** Build a set value (sorts, dedups). *)

val vmap : (t * t) list -> t
(** Build a map value (sorts by key; later bindings win). *)

val ip_of_string : string -> (int32, string) result
(** Parse dotted-quad IPv4 notation. *)

val ip_to_string : int32 -> string

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val is_truthy : t -> bool
(** [Bool true] only; everything else is false-y (predicates are
    three-valued in spirit: comparisons with [Null] are never true). *)

module Strmap = Nepal_util.Strmap

type kind = Node_kind | Edge_kind

type class_decl = {
  name : string;
  parent : string;
  fields : (string * Ftype.t) list;
  abstract : bool;
  cardinality_hint : int option;
}

let class_decl ?(fields = []) ?(abstract = false) ?cardinality_hint ~parent name
    =
  { name; parent; fields; abstract; cardinality_hint }

type data_decl = {
  dname : string;
  dparent : string option;
  dfields : (string * Ftype.t) list;
}

let data_decl ?parent ~fields dname = { dname; dparent = parent; dfields = fields }

type edge_rule = { edge : string; src : string; dst : string }

type t = {
  classes : class_decl Strmap.t;
  data_types : data_decl Strmap.t;
  rules : edge_rule list;
  (* Caches computed at creation. *)
  ancestors_cache : string list Strmap.t;  (* root-first, includes self *)
  children : string list Strmap.t;
  all_fields : (string * Ftype.t) list Strmap.t;
  data_fields : (string * Ftype.t) list Strmap.t;
}

let root_any = "Any"
let root_node = "Node"
let root_edge = "Edge"

let builtin_classes =
  [
    { name = root_node; parent = root_any; fields = []; abstract = false;
      cardinality_hint = None };
    { name = root_edge; parent = root_any; fields = []; abstract = false;
      cardinality_hint = None };
  ]

let ( let* ) = Result.bind

let rec check_no_dup_names seen = function
  | [] -> Ok ()
  | n :: rest ->
      if Nepal_util.Strset.mem n seen then
        Error (Printf.sprintf "duplicate declaration of %S" n)
      else check_no_dup_names (Nepal_util.Strset.add n seen) rest

(* Topologically walk the class forest from the roots; detects orphan
   parents and cycles at once because unreachable classes remain. *)
let compute_ancestors classes =
  let tbl = Hashtbl.create 64 in
  Hashtbl.replace tbl root_any [ root_any ];
  let progress = ref true in
  while !progress do
    progress := false;
    Strmap.iter
      (fun name (c : class_decl) ->
        if not (Hashtbl.mem tbl name) then
          match Hashtbl.find_opt tbl c.parent with
          | Some path ->
              Hashtbl.replace tbl name (path @ [ name ]);
              progress := true
          | None -> ())
      classes
  done;
  let missing =
    Strmap.fold
      (fun name _ acc -> if Hashtbl.mem tbl name then acc else name :: acc)
      classes []
  in
  match missing with
  | [] ->
      Ok
        (Strmap.of_list
           (List.of_seq
              (Seq.map (fun (k, v) -> (k, v)) (Hashtbl.to_seq tbl))))
  | ns ->
      Error
        (Printf.sprintf "classes with missing or cyclic parents: %s"
           (String.concat ", " (List.sort String.compare ns)))

let compute_fields classes ancestors_cache =
  let result = ref Strmap.empty in
  let errors = ref [] in
  Strmap.iter
    (fun name path ->
      if name <> root_any then begin
        let seen = Hashtbl.create 8 in
        let fields = ref [] in
        List.iter
          (fun cls ->
            if cls <> root_any then
              let decl = Strmap.find cls classes in
              List.iter
                (fun (fname, ft) ->
                  if Hashtbl.mem seen fname then
                    errors :=
                      Printf.sprintf "class %S redefines inherited field %S"
                        cls fname
                      :: !errors
                  else begin
                    Hashtbl.replace seen fname ();
                    fields := (fname, ft) :: !fields
                  end)
                decl.fields)
          path;
        result := Strmap.add name (List.rev !fields) !result
      end)
    ancestors_cache;
  match !errors with
  | [] -> Ok !result
  | e :: _ -> Error e

let compute_data_fields (data_types : data_decl Strmap.t) =
  (* Resolve inheritance among data types; detect cycles. *)
  let tbl = Hashtbl.create 16 in
  let rec resolve stack dname =
    match Hashtbl.find_opt tbl dname with
    | Some fields -> Ok fields
    | None ->
        if List.mem dname stack then
          Error (Printf.sprintf "data type inheritance cycle at %S" dname)
        else
          match Strmap.find_opt dname data_types with
          | None -> Error (Printf.sprintf "unknown data type %S" dname)
          | Some d ->
              let* inherited =
                match d.dparent with
                | None -> Ok []
                | Some p -> resolve (dname :: stack) p
              in
              let fields = inherited @ d.dfields in
              Hashtbl.replace tbl dname fields;
              Ok fields
  in
  let rec loop = function
    | [] -> Ok ()
    | (dname, _) :: rest -> (
        match resolve [] dname with Ok _ -> loop rest | Error e -> Error e)
  in
  let* () = loop (Strmap.bindings data_types) in
  Ok
    (Strmap.of_list
       (List.of_seq (Hashtbl.to_seq tbl)))

(* The composition DAG over data types must be acyclic: a data type may
   not (transitively) contain a field of its own type. *)
let check_composition_acyclic data_fields =
  let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
  let rec visit dname =
    if Hashtbl.mem done_ dname then Ok ()
    else if Hashtbl.mem visiting dname then
      Error (Printf.sprintf "data type composition cycle through %S" dname)
    else begin
      Hashtbl.replace visiting dname ();
      let fields = Strmap.find_opt_or dname ~default:[] data_fields in
      let refs = List.concat_map (fun (_, ft) -> Ftype.data_refs ft) fields in
      let rec each = function
        | [] -> Ok ()
        | r :: rest ->
            if not (Strmap.mem r data_fields) then
              Error (Printf.sprintf "data type %S references unknown type %S" dname r)
            else
              let* () = visit r in
              each rest
      in
      let* () = each refs in
      Hashtbl.remove visiting dname;
      Hashtbl.replace done_ dname ();
      Ok ()
    end
  in
  let rec loop = function
    | [] -> Ok ()
    | (dname, _) :: rest ->
        let* () = visit dname in
        loop rest
  in
  loop (Strmap.bindings data_fields)

let check_field_types classes data_fields =
  let check_one owner (fname, ft) =
    let rec each = function
      | [] -> Ok ()
      | r :: rest ->
          if Strmap.mem r data_fields then each rest
          else
            Error
              (Printf.sprintf "%s.%s references unknown data type %S" owner
                 fname r)
    in
    each (Ftype.data_refs ft)
  in
  Strmap.fold
    (fun name (c : class_decl) acc ->
      let* () = acc in
      let rec each = function
        | [] -> Ok ()
        | f :: rest ->
            let* () = check_one name f in
            each rest
      in
      each c.fields)
    classes (Ok ())

let create ?(data_types = []) ?(edge_rules = []) decls =
  let decls = builtin_classes @ decls in
  let* () =
    check_no_dup_names Nepal_util.Strset.empty
      (List.map (fun c -> c.name) decls @ List.map (fun d -> d.dname) data_types)
  in
  let* () =
    if List.exists (fun c -> c.name = root_any) decls then
      Error "class name \"Any\" is reserved"
    else Ok ()
  in
  let classes = Strmap.of_list (List.map (fun c -> (c.name, c)) decls) in
  let data_types_m =
    Strmap.of_list (List.map (fun d -> (d.dname, d)) data_types)
  in
  let* ancestors_cache = compute_ancestors classes in
  let* all_fields = compute_fields classes ancestors_cache in
  let* data_fields = compute_data_fields data_types_m in
  let* () = check_composition_acyclic data_fields in
  let* () = check_field_types classes data_fields in
  let children =
    Strmap.fold
      (fun name (c : class_decl) acc ->
        let existing = Strmap.find_opt_or c.parent ~default:[] acc in
        Strmap.add c.parent (name :: existing) acc)
      classes Strmap.empty
    |> Strmap.map (List.sort String.compare)
  in
  let kind_of_name name =
    match Strmap.find_opt name ancestors_cache with
    | Some (_ :: k :: _) when k = root_node -> Some Node_kind
    | Some (_ :: k :: _) when k = root_edge -> Some Edge_kind
    | Some [ _ ] when name = root_node -> Some Node_kind
    | _ when name = root_node -> Some Node_kind
    | _ when name = root_edge -> Some Edge_kind
    | _ -> None
  in
  let* () =
    let bad_rule r =
      match (kind_of_name r.edge, kind_of_name r.src, kind_of_name r.dst) with
      | Some Edge_kind, Some Node_kind, Some Node_kind -> None
      | _ ->
          Some
            (Printf.sprintf
               "edge rule (%s: %s -> %s) must name an edge class and two node classes"
               r.edge r.src r.dst)
    in
    match List.filter_map bad_rule edge_rules with
    | [] -> Ok ()
    | e :: _ -> Error e
  in
  Ok
    {
      classes;
      data_types = data_types_m;
      rules = edge_rules;
      ancestors_cache;
      children;
      all_fields;
      data_fields;
    }

let create_exn ?data_types ?edge_rules decls =
  match create ?data_types ?edge_rules decls with
  | Ok t -> t
  | Error e -> invalid_arg ("Schema.create_exn: " ^ e)

let mem_class t name = Strmap.mem name t.classes || name = root_any

let ancestors t name =
  match Strmap.find_opt name t.ancestors_cache with
  | Some p -> p
  | None -> if name = root_any then [ root_any ] else raise Not_found

let kind_of t name =
  match Strmap.find_opt name t.ancestors_cache with
  | Some (_ :: k :: _) -> if k = root_node then Some Node_kind else Some Edge_kind
  | _ -> None

let is_abstract t name =
  match Strmap.find_opt name t.classes with
  | Some c -> c.abstract
  | None -> name = root_any

let parent_of t name =
  match Strmap.find_opt name t.classes with
  | Some c -> Some c.parent
  | None -> None

let inheritance_label t name =
  match ancestors t name with
  | _any :: rest -> String.concat ":" rest
  | [] -> assert false

let is_subclass t ~sub ~sup =
  sup = root_any
  ||
  match Strmap.find_opt sub t.ancestors_cache with
  | Some path -> List.mem sup path
  | None -> false

let subclasses t name =
  let rec collect n =
    n :: List.concat_map collect (Strmap.find_opt_or n ~default:[] t.children)
  in
  if mem_class t name then collect name else []

let concrete_subclasses t name =
  List.filter (fun c -> not (is_abstract t c)) (subclasses t name)

let least_common_ancestor t = function
  | [] -> None
  | first :: rest ->
      let rec common p1 p2 acc =
        match (p1, p2) with
        | a :: p1', b :: p2' when String.equal a b -> common p1' p2' (a :: acc)
        | _ -> acc
      in
      let path name =
        match Strmap.find_opt name t.ancestors_cache with
        | Some p -> Some p
        | None -> if name = root_any then Some [ root_any ] else None
      in
      let fold acc name =
        match (acc, path name) with
        | Some acc_path, Some p -> (
            match common acc_path p [] with
            | [] -> None
            | l -> Some (List.rev l))
        | _ -> None
      in
      List.fold_left fold (path first) rest
      |> Option.map (fun p -> List.nth p (List.length p - 1))

let all_classes t = List.map fst (Strmap.bindings t.classes)

let classes_of_kind t k =
  List.filter (fun c -> kind_of t c = Some k) (all_classes t)

let node_classes t = classes_of_kind t Node_kind
let edge_classes t = classes_of_kind t Edge_kind

let fields_of t name =
  match Strmap.find_opt name t.all_fields with
  | Some f -> f
  | None -> if name = root_any then [] else raise Not_found

let field_type t cls field =
  match Strmap.find_opt cls t.all_fields with
  | None -> None
  | Some fields -> List.assoc_opt field fields

let cardinality_hint t name =
  match Strmap.find_opt name t.ancestors_cache with
  | None -> None
  | Some path ->
      List.fold_left
        (fun acc cls ->
          match Strmap.find_opt cls t.classes with
          | Some { cardinality_hint = Some h; _ } -> Some h
          | _ -> acc)
        None path

let data_type_fields t name = Strmap.find_opt name t.data_fields

let data_type_names t = List.map fst (Strmap.bindings t.data_types)

let edge_rules t = t.rules

let edge_allowed t ~edge ~src ~dst =
  let relevant =
    List.filter (fun r -> is_subclass t ~sub:edge ~sup:r.edge) t.rules
  in
  match relevant with
  | [] -> true
  | rules ->
      List.exists
        (fun r ->
          is_subclass t ~sub:src ~sup:r.src && is_subclass t ~sub:dst ~sup:r.dst)
        rules

let rec typecheck_value t (ft : Ftype.t) (v : Value.t) =
  match (ft, v) with
  | _, Value.Null -> Ok ()
  | Ftype.T_int, Value.Int _ -> Ok ()
  | Ftype.T_float, (Value.Float _ | Value.Int _) -> Ok ()
  | Ftype.T_bool, Value.Bool _ -> Ok ()
  | Ftype.T_string, Value.Str _ -> Ok ()
  | Ftype.T_ip, Value.Ip _ -> Ok ()
  | Ftype.T_time, Value.Time _ -> Ok ()
  | Ftype.T_list elt, Value.List items | Ftype.T_set elt, Value.Vset items ->
      let rec each = function
        | [] -> Ok ()
        | x :: rest ->
            let* () = typecheck_value t elt x in
            each rest
      in
      each items
  | Ftype.T_map (kt, vt), Value.Vmap pairs ->
      let rec each = function
        | [] -> Ok ()
        | (k, v) :: rest ->
            let* () = typecheck_value t kt k in
            let* () = typecheck_value t vt v in
            each rest
      in
      each pairs
  | Ftype.T_data dname, Value.Data (vname, fields) -> (
      if dname <> vname then
        Error
          (Printf.sprintf "expected data type %S, got %S" dname vname)
      else
        match data_type_fields t dname with
        | None -> Error (Printf.sprintf "unknown data type %S" dname)
        | Some decl_fields ->
            let declared = List.map fst decl_fields in
            let unknown =
              Strmap.keys fields
              |> List.filter (fun k -> not (List.mem k declared))
            in
            if unknown <> [] then
              Error
                (Printf.sprintf "data type %S has no field %S" dname
                   (List.hd unknown))
            else
              let rec each = function
                | [] -> Ok ()
                | (fname, ft') :: rest ->
                    let v' =
                      Strmap.find_opt_or fname ~default:Value.Null fields
                    in
                    let* () = typecheck_value t ft' v' in
                    each rest
              in
              each decl_fields)
  | _, _ ->
      Error
        (Printf.sprintf "value %s does not have type %s" (Value.to_string v)
           (Ftype.to_string ft))

let typecheck_record t cls record =
  match Strmap.find_opt cls t.all_fields with
  | None -> Error (Printf.sprintf "unknown class %S" cls)
  | Some decl_fields ->
      if is_abstract t cls then
        Error (Printf.sprintf "class %S is abstract" cls)
      else
        let declared = List.map fst decl_fields in
        let unknown =
          Strmap.keys record |> List.filter (fun k -> not (List.mem k declared))
        in
        if unknown <> [] then
          Error (Printf.sprintf "class %S has no field %S" cls (List.hd unknown))
        else
          let rec each acc = function
            | [] -> Ok acc
            | (fname, ft) :: rest ->
                let v = Strmap.find_opt_or fname ~default:Value.Null record in
                let* () =
                  Result.map_error
                    (fun e -> Printf.sprintf "%s.%s: %s" cls fname e)
                    (typecheck_value t ft v)
                in
                each (Strmap.add fname v acc) rest
          in
          each Strmap.empty decl_fields

let pp ppf t =
  let pp_class name =
    let c = Strmap.find name t.classes in
    Format.fprintf ppf "  %s%s <: %s%s@."
      (if c.abstract then "abstract " else "")
      name c.parent
      (if c.fields = [] then ""
       else
         " { "
         ^ String.concat "; "
             (List.map
                (fun (f, ft) -> f ^ ": " ^ Ftype.to_string ft)
                c.fields)
         ^ " }")
  in
  Format.fprintf ppf "schema:@.";
  List.iter pp_class (all_classes t);
  List.iter
    (fun r -> Format.fprintf ppf "  rule: %s: %s -> %s@." r.edge r.src r.dst)
    t.rules

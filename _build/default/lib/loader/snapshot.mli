(** External full-snapshot representation.

    Several of the paper's data sources "provide periodic snapshots of
    their contents rather than update streams" (Section 3.1); a
    snapshot identifies entities by source-assigned string keys, which
    the loader maps onto store uids. *)

module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap

type node_rec = { nkey : string; ncls : string; nfields : Value.t Strmap.t }

type edge_rec = {
  ekey : string;
  ecls : string;
  src_key : string;
  dst_key : string;
  efields : Value.t Strmap.t;
}

type t = { nodes : node_rec list; edges : edge_rec list }

val empty : t
val node : ?fields:(string * Value.t) list -> cls:string -> string -> node_rec
val edge :
  ?fields:(string * Value.t) list ->
  cls:string -> src:string -> dst:string -> string -> edge_rec

val validate : t -> (unit, string) result
(** Keys unique; edge endpoints present among the snapshot's nodes. *)

module Store = Nepal_store.Graph_store
module Entity = Nepal_store.Entity
module Value = Nepal_schema.Value
module Schema = Nepal_schema.Schema
module Strmap = Nepal_util.Strmap
module Time_point = Nepal_temporal.Time_point
module Time_constraint = Nepal_temporal.Time_constraint

type t = {
  store : Store.t;
  key_to_uid : (string, int) Hashtbl.t;
  uid_to_key : (int, string) Hashtbl.t;
}

let create store =
  { store; key_to_uid = Hashtbl.create 1024; uid_to_key = Hashtbl.create 1024 }

type delta = { inserted : int; updated : int; deleted : int; unchanged : int }

let ( let* ) = Result.bind

let uid_of_key t key = Hashtbl.find_opt t.key_to_uid key

(* Typecheck the whole snapshot up front so a bad snapshot aborts
   before any mutation reaches the store. *)
let precheck t (snap : Snapshot.t) =
  let schema = Store.schema t.store in
  let* () = Snapshot.validate snap in
  let* () =
    List.fold_left
      (fun acc (n : Snapshot.node_rec) ->
        let* () = acc in
        match Schema.kind_of schema n.ncls with
        | Some Schema.Node_kind ->
            let* _ = Schema.typecheck_record schema n.ncls n.nfields in
            Ok ()
        | _ -> Error (Printf.sprintf "snapshot node %S: %S is not a node class" n.nkey n.ncls))
      (Ok ()) snap.nodes
  in
  List.fold_left
    (fun acc (e : Snapshot.edge_rec) ->
      let* () = acc in
      match Schema.kind_of schema e.ecls with
      | Some Schema.Edge_kind ->
          let* _ = Schema.typecheck_record schema e.ecls e.efields in
          Ok ()
      | _ -> Error (Printf.sprintf "snapshot edge %S: %S is not an edge class" e.ekey e.ecls))
    (Ok ()) snap.edges

let fields_equal schema cls a b =
  match
    (Schema.typecheck_record schema cls a, Schema.typecheck_record schema cls b)
  with
  | Ok a', Ok b' -> Strmap.equal Value.equal a' b'
  | _ -> false

let apply t ~at (snap : Snapshot.t) =
  let* () = precheck t snap in
  let store = t.store in
  let schema = Store.schema store in
  let counts = ref { inserted = 0; updated = 0; deleted = 0; unchanged = 0 } in
  let bump f = counts := f !counts in
  let bind key uid =
    Hashtbl.replace t.key_to_uid key uid;
    Hashtbl.replace t.uid_to_key uid key
  in
  let unbind key =
    match Hashtbl.find_opt t.key_to_uid key with
    | Some uid ->
        Hashtbl.remove t.key_to_uid key;
        Hashtbl.remove t.uid_to_key uid
    | None -> ()
  in
  let current uid = Store.get store ~tc:Time_constraint.snapshot uid in
  (* 1. Delete entities whose keys vanished — edges first so node
     deletion never cascades implicitly. *)
  let snap_keys = Hashtbl.create 1024 in
  List.iter (fun (n : Snapshot.node_rec) -> Hashtbl.replace snap_keys n.nkey ()) snap.nodes;
  List.iter (fun (e : Snapshot.edge_rec) -> Hashtbl.replace snap_keys e.ekey ()) snap.edges;
  let stale =
    Hashtbl.fold
      (fun key uid acc ->
        if Hashtbl.mem snap_keys key then acc
        else
          match current uid with
          | Some e -> (key, uid, Entity.is_edge e) :: acc
          | None -> (key, uid, false) :: acc)
      t.key_to_uid []
  in
  let stale_edges = List.filter (fun (_, _, is_e) -> is_e) stale in
  let stale_nodes = List.filter (fun (_, _, is_e) -> not is_e) stale in
  let* () =
    List.fold_left
      (fun acc (key, uid, _) ->
        let* () = acc in
        let* () =
          match current uid with
          | Some _ -> Store.delete store ~at uid
          | None -> Ok ()
        in
        unbind key;
        bump (fun c -> { c with deleted = c.deleted + 1 });
        Ok ())
      (Ok ()) (stale_edges @ stale_nodes)
  in
  (* 2. Upsert nodes. *)
  let* () =
    List.fold_left
      (fun acc (n : Snapshot.node_rec) ->
        let* () = acc in
        match uid_of_key t n.nkey with
        | Some uid -> (
            match current uid with
            | Some e when e.Entity.cls = n.ncls ->
                if fields_equal schema n.ncls e.Entity.fields n.nfields then begin
                  bump (fun c -> { c with unchanged = c.unchanged + 1 });
                  Ok ()
                end
                else begin
                  let* () = Store.update store ~at uid ~fields:n.nfields in
                  bump (fun c -> { c with updated = c.updated + 1 });
                  Ok ()
                end
            | _ ->
                (* Class changed (or entity missing): replace. *)
                let* () =
                  match current uid with
                  | Some _ -> Store.delete store ~at ~cascade:true uid
                  | None -> Ok ()
                in
                let* uid' =
                  Store.insert_node store ~at ~cls:n.ncls ~fields:n.nfields
                in
                bind n.nkey uid';
                bump (fun c -> { c with updated = c.updated + 1 });
                Ok ())
        | None ->
            let* uid = Store.insert_node store ~at ~cls:n.ncls ~fields:n.nfields in
            bind n.nkey uid;
            bump (fun c -> { c with inserted = c.inserted + 1 });
            Ok ())
      (Ok ()) snap.nodes
  in
  (* 3. Upsert edges (endpoints now resolvable). *)
  let* () =
    List.fold_left
      (fun acc (e : Snapshot.edge_rec) ->
        let* () = acc in
        let* src =
          match uid_of_key t e.src_key with
          | Some u -> Ok u
          | None -> Error (Printf.sprintf "edge %S: unresolved endpoint %S" e.ekey e.src_key)
        in
        let* dst =
          match uid_of_key t e.dst_key with
          | Some u -> Ok u
          | None -> Error (Printf.sprintf "edge %S: unresolved endpoint %S" e.ekey e.dst_key)
        in
        match uid_of_key t e.ekey with
        | Some uid -> (
            match current uid with
            | Some old
              when Entity.is_edge old
                   && old.Entity.cls = e.ecls
                   && Entity.src old = src
                   && Entity.dst old = dst ->
                if fields_equal schema e.ecls old.Entity.fields e.efields then begin
                  bump (fun c -> { c with unchanged = c.unchanged + 1 });
                  Ok ()
                end
                else begin
                  let* () = Store.update store ~at uid ~fields:e.efields in
                  bump (fun c -> { c with updated = c.updated + 1 });
                  Ok ()
                end
            | _ ->
                (* Endpoints or class moved: replace the edge. *)
                let* () =
                  match current uid with
                  | Some _ -> Store.delete store ~at uid
                  | None -> Ok ()
                in
                let* uid' =
                  Store.insert_edge store ~at ~cls:e.ecls ~src ~dst ~fields:e.efields
                in
                bind e.ekey uid';
                bump (fun c -> { c with updated = c.updated + 1 });
                Ok ())
        | None ->
            let* uid = Store.insert_edge store ~at ~cls:e.ecls ~src ~dst ~fields:e.efields in
            bind e.ekey uid;
            bump (fun c -> { c with inserted = c.inserted + 1 });
            Ok ())
      (Ok ()) snap.edges
  in
  Ok !counts

let pp_delta ppf d =
  Format.fprintf ppf "+%d ~%d -%d =%d" d.inserted d.updated d.deleted d.unchanged

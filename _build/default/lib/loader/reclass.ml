module Store = Nepal_store.Graph_store
module Entity = Nepal_store.Entity
module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap
module Time_constraint = Nepal_temporal.Time_constraint
module Legacy = Nepal_netmodel.Legacy

let ( let* ) = Result.bind

let reclass (t : Legacy.t) =
  match t.Legacy.mode with
  | Legacy.Classed -> Error "store is already class-partitioned"
  | Legacy.Flat ->
      let src = t.Legacy.store in
      let dst = Store.create (Legacy.schema Legacy.Classed) in
      let at = Store.clock src in
      let uid_map = Hashtbl.create 4096 in
      let tc = Time_constraint.snapshot in
      let* () =
        List.fold_left
          (fun acc uid ->
            let* () = acc in
            match Store.get src ~tc uid with
            | None -> Ok ()
            | Some e when Entity.is_node e ->
                let* new_uid =
                  Store.insert_node dst ~at ~cls:e.Entity.cls ~fields:e.Entity.fields
                in
                Hashtbl.replace uid_map uid new_uid;
                Ok ()
            | Some e ->
                let indicator =
                  match Entity.field e "type_indicator" with
                  | Value.Str s -> s
                  | _ -> "unknown"
                in
                let cls = Legacy.edge_class_of_indicator indicator in
                let* src_uid =
                  match Hashtbl.find_opt uid_map (Entity.src e) with
                  | Some u -> Ok u
                  | None -> Error (Printf.sprintf "edge #%d: unmapped source" uid)
                in
                let* dst_uid =
                  match Hashtbl.find_opt uid_map (Entity.dst e) with
                  | Some u -> Ok u
                  | None -> Error (Printf.sprintf "edge #%d: unmapped target" uid)
                in
                let* new_uid =
                  Store.insert_edge dst ~at ~cls ~src:src_uid ~dst:dst_uid
                    ~fields:e.Entity.fields
                in
                Hashtbl.replace uid_map uid new_uid;
                Ok ())
          (Ok ()) (Store.live_uids src)
      in
      let* () = Store.create_index dst ~cls:"LegacyNode" ~field:"id" in
      Ok { t with Legacy.store = dst; mode = Legacy.Classed }

(** The update-by-snapshot service (Section 3.1).

    Each applied snapshot is diffed against the store's current state:
    new keys become inserts, vanished keys become deletes, changed
    fields become updates, and an edge whose endpoints moved is
    replaced. The loader owns the key→uid mapping across snapshots. *)

module Store = Nepal_store.Graph_store
module Time_point = Nepal_temporal.Time_point

type t

val create : Store.t -> t

type delta = {
  inserted : int;
  updated : int;
  deleted : int;
  unchanged : int;
}

val apply : t -> at:Time_point.t -> Snapshot.t -> (delta, string) result
(** Schema violations abort with an error before any mutation ("strong
    typing ... prevented us from loading garbage", Section 6.1). *)

val uid_of_key : t -> string -> int option
(** The store uid currently bound to a snapshot key. *)

val pp_delta : Format.formatter -> delta -> unit

module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap

type node_rec = { nkey : string; ncls : string; nfields : Value.t Strmap.t }

type edge_rec = {
  ekey : string;
  ecls : string;
  src_key : string;
  dst_key : string;
  efields : Value.t Strmap.t;
}

type t = { nodes : node_rec list; edges : edge_rec list }

let empty = { nodes = []; edges = [] }

let node ?(fields = []) ~cls nkey =
  { nkey; ncls = cls; nfields = Strmap.of_list fields }

let edge ?(fields = []) ~cls ~src ~dst ekey =
  { ekey; ecls = cls; src_key = src; dst_key = dst; efields = Strmap.of_list fields }

let validate t =
  let keys = Hashtbl.create 256 in
  let rec check_unique = function
    | [] -> Ok ()
    | k :: rest ->
        if Hashtbl.mem keys k then Error (Printf.sprintf "duplicate snapshot key %S" k)
        else begin
          Hashtbl.replace keys k ();
          check_unique rest
        end
  in
  match
    check_unique
      (List.map (fun n -> n.nkey) t.nodes @ List.map (fun e -> e.ekey) t.edges)
  with
  | Error e -> Error e
  | Ok () -> (
      let node_keys = Hashtbl.create 256 in
      List.iter (fun n -> Hashtbl.replace node_keys n.nkey ()) t.nodes;
      match
        List.find_opt
          (fun e ->
            (not (Hashtbl.mem node_keys e.src_key))
            || not (Hashtbl.mem node_keys e.dst_key))
          t.edges
      with
      | Some e -> Error (Printf.sprintf "edge %S has a dangling endpoint" e.ekey)
      | None -> Ok ())

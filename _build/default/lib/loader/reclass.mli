(** The Section 6 re-classing operation: take a legacy topology loaded
    "as provided" (one node class, one edge class with a
    [type_indicator] field) and reload its most recent snapshot into a
    store whose schema has one edge subclass per indicator value. *)

val reclass : Nepal_netmodel.Legacy.t -> (Nepal_netmodel.Legacy.t, string) result
(** Re-class a {!Nepal_netmodel.Legacy.Flat} topology into its
    [Classed] equivalent, preserving the current snapshot (history is
    not migrated — the paper reloaded "from the most recent day's
    data"). Rejects stores already in classed mode. *)

lib/loader/snapshot.ml: Hashtbl List Nepal_schema Nepal_util Printf

lib/loader/reclass.mli: Nepal_netmodel

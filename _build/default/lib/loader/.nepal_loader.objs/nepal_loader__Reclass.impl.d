lib/loader/reclass.ml: Hashtbl List Nepal_netmodel Nepal_schema Nepal_store Nepal_temporal Nepal_util Printf Result

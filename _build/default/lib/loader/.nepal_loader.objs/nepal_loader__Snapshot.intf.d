lib/loader/snapshot.mli: Nepal_schema Nepal_util

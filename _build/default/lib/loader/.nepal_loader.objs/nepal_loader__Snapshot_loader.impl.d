lib/loader/snapshot_loader.ml: Format Hashtbl List Nepal_schema Nepal_store Nepal_temporal Nepal_util Printf Result Snapshot

lib/loader/snapshot_loader.mli: Format Nepal_store Nepal_temporal Snapshot

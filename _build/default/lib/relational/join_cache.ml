(* Cached build sides of hash joins, keyed by the SQL text of the build
   plan and invalidated by table version counters — the engine's analog
   of a maintained index. *)

module Value = Nepal_schema.Value

type entry = {
  deps : (string * int) list; (* table name, version at build time *)
  buckets : (int, (Value.t * Value.t array) list) Hashtbl.t;
  cols : string array;
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 64

module Value = Nepal_schema.Value

type t = {
  tables : (string, Table.t) Hashtbl.t;
  child_index : (string, string list) Hashtbl.t;
  temp : (string, unit) Hashtbl.t;
  mutable temp_counter : int;
  jcache : Join_cache.t;
}

let create () =
  {
    tables = Hashtbl.create 64;
    child_index = Hashtbl.create 64;
    temp = Hashtbl.create 16;
    temp_counter = 0;
    jcache = Join_cache.create ();
  }

let join_cache t = t.jcache

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Ok tbl
  | None -> Error (Printf.sprintf "no such table %S" name)

let mem_table t name = Hashtbl.mem t.tables name

(* Postgres INHERITS merges columns by name; the child must have every
   parent column (scans project by name, so ordering is free). *)
let has_all_parent_cols ~parent_cols cols =
  Array.for_all (fun c -> List.mem c cols) parent_cols

let create_table t ?parent ?(temp = false) ~name cols =
  if Hashtbl.mem t.tables name then
    Error (Printf.sprintf "table %S already exists" name)
  else
    let check_parent =
      match parent with
      | None -> Ok ()
      | Some p -> (
          match Hashtbl.find_opt t.tables p with
          | None -> Error (Printf.sprintf "parent table %S does not exist" p)
          | Some ptbl ->
              if has_all_parent_cols ~parent_cols:ptbl.Table.cols cols then Ok ()
              else
                Error
                  (Printf.sprintf
                     "child table %S must include all of parent %S's columns"
                     name p))
    in
    match check_parent with
    | Error e -> Error e
    | Ok () ->
        Hashtbl.replace t.tables name (Table.make ?parent ~name cols);
        (match parent with
        | Some p ->
            let existing =
              match Hashtbl.find_opt t.child_index p with Some l -> l | None -> []
            in
            Hashtbl.replace t.child_index p (existing @ [ name ])
        | None -> ());
        if temp then Hashtbl.replace t.temp name ();
        Ok ()

let children t name =
  match Hashtbl.find_opt t.child_index name with Some l -> l | None -> []

let family t name =
  let rec collect n = n :: List.concat_map collect (children t n) in
  collect name

let drop_table t name =
  if not (Hashtbl.mem t.tables name) then
    Error (Printf.sprintf "no such table %S" name)
  else if children t name <> [] then
    Error (Printf.sprintf "table %S has child tables" name)
  else begin
    let parent =
      match Hashtbl.find_opt t.tables name with
      | Some tbl -> tbl.Table.parent
      | None -> None
    in
    Hashtbl.remove t.tables name;
    Hashtbl.remove t.temp name;
    (match parent with
    | Some p ->
        Hashtbl.replace t.child_index p
          (List.filter (fun c -> c <> name) (children t p))
    | None -> ());
    Ok ()
  end

let drop_temp_tables t =
  let temps = Hashtbl.fold (fun name () acc -> name :: acc) t.temp [] in
  List.iter (fun name -> ignore (drop_table t name)) temps

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let insert t name bindings =
  match table t name with
  | Error e -> Error e
  | Ok tbl -> Table.insert tbl bindings

let total_rows t =
  Hashtbl.fold
    (fun name tbl acc ->
      if Hashtbl.mem t.temp name then acc else acc + Table.row_count tbl)
    t.tables 0

let fresh_temp_name t =
  t.temp_counter <- t.temp_counter + 1;
  Printf.sprintf "tmp_%d" t.temp_counter

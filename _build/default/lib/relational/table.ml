module Value = Nepal_schema.Value

type t = {
  name : string;
  parent : string option;
  cols : string array;
  mutable rows : Value.t array list;
  mutable version_ : int;
}

let make ?parent ~name cols =
  { name; parent; cols = Array.of_list cols; rows = []; version_ = 0 }

let bump t = t.version_ <- t.version_ + 1
let version t = t.version_

let col_index t c =
  let n = Array.length t.cols in
  let rec find i = if i >= n then None else if t.cols.(i) = c then Some i else find (i + 1) in
  find 0

let insert t bindings =
  let row = Array.make (Array.length t.cols) Value.Null in
  let rec fill = function
    | [] ->
        t.rows <- row :: t.rows;
        Ok ()
    | (c, v) :: rest -> (
        match col_index t c with
        | Some i ->
            row.(i) <- v;
            fill rest
        | None -> Error (Printf.sprintf "table %s has no column %s" t.name c))
  in
  bump t;
  fill bindings

let insert_row t row =
  if Array.length row <> Array.length t.cols then
    Error
      (Printf.sprintf "table %s expects %d columns, got %d" t.name
         (Array.length t.cols) (Array.length row))
  else begin
    bump t;
    t.rows <- row :: t.rows;
    Ok ()
  end

let row_count t = List.length t.rows
let rows_in_order t = List.rev t.rows
let clear t =
  bump t;
  t.rows <- []

let delete_where t pred =
  bump t;
  let before = List.length t.rows in
  t.rows <- List.filter (fun r -> not (pred r)) t.rows;
  before - List.length t.rows

let update_where t pred f =
  bump t;
  let n = ref 0 in
  t.rows <-
    List.map
      (fun r ->
        if pred r then begin
          incr n;
          f r
        end
        else r)
      t.rows;
  !n

(** The catalog: named tables, [INHERITS] hierarchy, temp tables. *)

module Value = Nepal_schema.Value

type t

val create : unit -> t

val create_table :
  t -> ?parent:string -> ?temp:bool -> name:string -> string list ->
  (unit, string) result
(** A child table must include all of its parent's columns (by name,
    in any order — scans project by name, as Postgres INHERITS merges
    columns); it may add its own. *)

val drop_table : t -> string -> (unit, string) result
(** Dropping a table with children is an error. *)

val drop_temp_tables : t -> unit

val table : t -> string -> (Table.t, string) result
val mem_table : t -> string -> bool
val table_names : t -> string list
val children : t -> string -> string list
(** Direct children. *)

val family : t -> string -> string list
(** The table and all (transitive) children, scan order. *)

val insert : t -> string -> (string * Value.t) list -> (unit, string) result

val total_rows : t -> int
(** Across all non-temp tables — storage accounting. *)

val fresh_temp_name : t -> string

val join_cache : t -> Join_cache.t
(** Internal: cached hash-join build sides (the engine's analog of
    maintained indexes). *)

(** Physical query plans and their interpreter.

    The Nepal query translator emits these plans (Select, Extend and
    Union operators become scans, hash joins and unions); [to_sql]
    renders the equivalent PostgreSQL, which is what the paper's code
    generator would ship to a real server. *)

module Value = Nepal_schema.Value

type rowset = { cols : string array; rows : Value.t array list }

type agg =
  | Count
  | First of string
  | Iset_union of string  (** union of encoded interval sets *)
  | Min of string
  | Max of string
  | Sum of string

type t =
  | Scan of { table : string; only : bool }
      (** [only] suppresses INHERITS children (Postgres [ONLY t]). *)
  | Values of { cols : string list; rows : Value.t array list }
  | Filter of t * Expr.t
  | Project of t * (string * Expr.t) list
  | Rename of t * string  (** prefix every column with ["p."] *)
  | Hash_join of { left : t; right : t; left_key : Expr.t; right_key : Expr.t;
                   residual : Expr.t }
  | Union_all of t list
  | Distinct of t
  | Aggregate of { input : t; group_by : string list; aggs : (string * agg) list }
  | Sort of t * (Expr.t * [ `Asc | `Desc ]) list
  | Limit of t * int

val run : Database.t -> t -> (rowset, string) result
val run_exn : Database.t -> t -> rowset

val create_temp : Database.t -> t -> (string, string) result
(** [CREATE TEMP TABLE <fresh> AS <plan>]; returns the table name. *)

val to_sql : t -> string

val column_value : rowset -> Value.t array -> string -> Value.t
(** Lookup by column name; [Null] when absent. *)

val rowset_count : rowset -> int

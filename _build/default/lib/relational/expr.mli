(** Scalar expressions of the relational engine: column references,
    constants, the array operations the paper's generated SQL relies on
    ([ARRAY\[x\] || uid_list], [id != ANY(uid_list)]), boolean
    connectives, and transaction-time period helpers. *)

module Value = Nepal_schema.Value

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Const of Value.t
  | Cmp of t * comparison * t      (** three-valued: [Null] operands yield false *)
  | And of t * t
  | Or of t * t
  | Not of t
  | Arr_lit of t list              (** [ARRAY\[e1, …\]] *)
  | Arr_concat of t * t            (** [a || b] on arrays *)
  | Arr_contains of t * t          (** [x = ANY(arr)] *)
  | Data_field of t * string       (** drill into a composite value *)
  | Period_contains of t * t       (** [sys_period @> t] *)
  | Period_is_current of t
  | Period_overlaps of t * t * t   (** period, window start, window end *)
  | Period_clip of t * t * t       (** period clipped to window, as a set *)
  | Iset_inter of t * t
  | Iset_nonempty of t

type row_env = string -> Value.t
(** Column lookup; unknown columns are [Null]. *)

val eval : row_env -> t -> Value.t
val eval_bool : row_env -> t -> bool

val conj : t list -> t
val tt : t

val columns : t -> string list
(** Columns referenced (with duplicates removed). *)

val to_sql : t -> string
(** Postgres-flavoured rendering (for the paper's code-generation
    story; the engine itself executes the AST). *)

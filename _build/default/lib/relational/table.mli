(** Heap tables of the mini relational engine.

    A table has named columns and dynamically-typed rows (the Nepal
    layer above enforces typing). Tables support single-parent
    [INHERITS] in the Postgres style: a child has all parent columns
    (possibly plus its own), and scanning the parent includes children
    unless the scan says [ONLY]. *)

module Value = Nepal_schema.Value

type t = {
  name : string;
  parent : string option;
  cols : string array;
  mutable rows : Value.t array list;  (** in insertion order, reversed *)
  mutable version_ : int;  (** use {!version} *)
}

val make : ?parent:string -> name:string -> string list -> t
(** [make ~name cols] — [cols] gives the column names in order. *)

val col_index : t -> string -> int option
val insert : t -> (string * Value.t) list -> (unit, string) result
(** Unspecified columns become [Null]; unknown columns are an error. *)

val insert_row : t -> Value.t array -> (unit, string) result
(** Positional insert; arity-checked. *)

val row_count : t -> int

val version : t -> int
(** Mutation counter — bumped by every write; lets plan caches detect
    staleness. *)


val rows_in_order : t -> Value.t array list
val clear : t -> unit
val delete_where : t -> (Value.t array -> bool) -> int
(** Returns the number of rows removed. *)

val update_where :
  t -> (Value.t array -> bool) -> (Value.t array -> Value.t array) -> int

module Value = Nepal_schema.Value
module Interval_set = Nepal_temporal.Interval_set

type rowset = { cols : string array; rows : Value.t array list }

type agg =
  | Count
  | First of string
  | Iset_union of string
  | Min of string
  | Max of string
  | Sum of string

type t =
  | Scan of { table : string; only : bool }
  | Values of { cols : string list; rows : Value.t array list }
  | Filter of t * Expr.t
  | Project of t * (string * Expr.t) list
  | Rename of t * string
  | Hash_join of { left : t; right : t; left_key : Expr.t; right_key : Expr.t;
                   residual : Expr.t }
  | Union_all of t list
  | Distinct of t
  | Aggregate of { input : t; group_by : string list; aggs : (string * agg) list }
  | Sort of t * (Expr.t * [ `Asc | `Desc ]) list
  | Limit of t * int

let ( let* ) = Result.bind

let env_of cols =
  let index = Hashtbl.create (Array.length cols) in
  Array.iteri (fun i c -> if not (Hashtbl.mem index c) then Hashtbl.replace index c i) cols;
  fun row c ->
    match Hashtbl.find_opt index c with
    | Some i -> row.(i)
    | None -> Value.Null

let column_value rs row c = env_of rs.cols row c
let rowset_count rs = List.length rs.rows

(* Project a child-table row (whose columns extend the parent's) onto
   the parent's column list. *)
let project_onto parent_cols (tbl : Table.t) rows =
  let idx =
    Array.map
      (fun c ->
        match Table.col_index tbl c with
        | Some i -> i
        | None -> -1)
      parent_cols
  in
  List.map (fun row -> Array.map (fun i -> if i >= 0 then row.(i) else Value.Null) idx) rows

(* -- SQL rendering --------------------------------------------------- *)

let agg_sql = function
  | Count -> "count(*)"
  | First c -> Printf.sprintf "first(%s)" c
  | Iset_union c -> Printf.sprintf "range_agg(%s)" c
  | Min c -> Printf.sprintf "min(%s)" c
  | Max c -> Printf.sprintf "max(%s)" c
  | Sum c -> Printf.sprintf "sum(%s)" c

let rec to_sql = function
  | Scan { table; only } ->
      if only then Printf.sprintf "SELECT * FROM ONLY %s" table
      else Printf.sprintf "SELECT * FROM %s" table
  | Values { cols; rows } ->
      Printf.sprintf "SELECT * FROM (VALUES %s) AS v(%s)"
        (String.concat ", "
           (List.map
              (fun r ->
                "("
                ^ String.concat ", "
                    (List.map
                       (fun v -> Expr.to_sql (Expr.Const v))
                       (Array.to_list r))
                ^ ")")
              rows))
        (String.concat ", " cols)
  | Filter (input, pred) ->
      Printf.sprintf "SELECT * FROM (%s) q WHERE %s" (to_sql input)
        (Expr.to_sql pred)
  | Project (input, items) ->
      Printf.sprintf "SELECT %s FROM (%s) q"
        (String.concat ", "
           (List.map (fun (n, e) -> Printf.sprintf "%s AS %s" (Expr.to_sql e) n) items))
        (to_sql input)
  | Rename (input, prefix) ->
      Printf.sprintf "SELECT * FROM (%s) AS %s" (to_sql input) prefix
  | Hash_join { left; right; left_key; right_key; residual } ->
      Printf.sprintf "SELECT * FROM (%s) l JOIN (%s) r ON %s = %s AND %s"
        (to_sql left) (to_sql right) (Expr.to_sql left_key)
        (Expr.to_sql right_key) (Expr.to_sql residual)
  | Union_all inputs ->
      String.concat " UNION ALL " (List.map (fun p -> "(" ^ to_sql p ^ ")") inputs)
  | Distinct input -> Printf.sprintf "SELECT DISTINCT * FROM (%s) q" (to_sql input)
  | Aggregate { input; group_by; aggs } ->
      Printf.sprintf "SELECT %s FROM (%s) q%s"
        (String.concat ", "
           (group_by
           @ List.map (fun (n, a) -> Printf.sprintf "%s AS %s" (agg_sql a) n) aggs))
        (to_sql input)
        (if group_by = [] then "" else " GROUP BY " ^ String.concat ", " group_by)
  | Sort (input, keys) ->
      Printf.sprintf "%s ORDER BY %s" (to_sql input)
        (String.concat ", "
           (List.map
              (fun (e, dir) ->
                Expr.to_sql e ^ match dir with `Asc -> " ASC" | `Desc -> " DESC")
              keys))
  | Limit (input, n) -> Printf.sprintf "%s LIMIT %d" (to_sql input) n

(* -- tables referenced by a plan (for cache invalidation) -------- *)

let rec tables_of db = function
  | Scan { table; only } ->
      if only then [ table ] else Database.family db table
  | Values _ -> []
  | Filter (p, _) | Project (p, _) | Rename (p, _) | Distinct p
  | Sort (p, _) | Limit (p, _) ->
      tables_of db p
  | Aggregate { input; _ } -> tables_of db input
  | Hash_join { left; right; _ } -> tables_of db left @ tables_of db right
  | Union_all ps -> List.concat_map (tables_of db) ps

let rec run db plan =
  match plan with
  | Scan { table; only } ->
      let* tbl = Database.table db table in
      let names = if only then [ table ] else Database.family db table in
      let cols = tbl.Table.cols in
      let* rows =
        List.fold_left
          (fun acc name ->
            let* acc = acc in
            let* child = Database.table db name in
            Ok (acc @ project_onto cols child (Table.rows_in_order child)))
          (Ok []) names
      in
      Ok { cols; rows }
  | Values { cols; rows } -> Ok { cols = Array.of_list cols; rows }
  | Filter (input, pred) ->
      let* rs = run db input in
      let env = env_of rs.cols in
      Ok { rs with rows = List.filter (fun r -> Expr.eval_bool (env r) pred) rs.rows }
  | Project (input, items) ->
      let* rs = run db input in
      let env = env_of rs.cols in
      let cols = Array.of_list (List.map fst items) in
      let exprs = List.map snd items in
      let rows =
        List.map
          (fun r ->
            let e = env r in
            Array.of_list (List.map (Expr.eval e) exprs))
          rs.rows
      in
      Ok { cols; rows }
  | Rename (input, prefix) ->
      let* rs = run db input in
      Ok { rs with cols = Array.map (fun c -> prefix ^ "." ^ c) rs.cols }
  | Hash_join { left; right; left_key; right_key; residual } ->
      let* lrs = run db left in
      let* rcols, buckets = build_side db right right_key in
      let lenv = env_of lrs.cols in
      let cols = Array.append lrs.cols rcols in
      let joined_env = env_of cols in
      let rows =
        List.concat_map
          (fun lrow ->
            let k = Expr.eval (lenv lrow) left_key in
            if k = Value.Null then []
            else
              (match Hashtbl.find_opt buckets (Value.hash k) with
              | Some entries -> entries
              | None -> [])
              |> List.filter_map (fun (k', rrow) ->
                     if Value.equal k k' then
                       let combined = Array.append lrow rrow in
                       if Expr.eval_bool (joined_env combined) residual then
                         Some combined
                       else None
                     else None))
          lrs.rows
      in
      Ok { cols; rows }
  | Union_all inputs -> (
      match inputs with
      | [] -> Ok { cols = [||]; rows = [] }
      | first :: rest ->
          let* frs = run db first in
          let* rows =
            List.fold_left
              (fun acc p ->
                let* acc = acc in
                let* rs = run db p in
                if Array.length rs.cols <> Array.length frs.cols then
                  Error "UNION branches have different arities"
                else Ok (acc @ rs.rows))
              (Ok frs.rows) rest
          in
          Ok { cols = frs.cols; rows })
  | Distinct input ->
      let* rs = run db input in
      let seen = Hashtbl.create 256 in
      let rows =
        List.filter
          (fun r ->
            let key = Value.List (Array.to_list r) in
            let h = Value.hash key in
            let dups = Hashtbl.find_all seen h in
            if List.exists (Value.equal key) dups then false
            else begin
              Hashtbl.add seen h key;
              true
            end)
          rs.rows
      in
      Ok { rs with rows }
  | Aggregate { input; group_by; aggs } ->
      let* rs = run db input in
      let env = env_of rs.cols in
      let groups : (int, Value.t list * Value.t array list) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      List.iter
        (fun r ->
          let key = List.map (env r) group_by in
          let h = Value.hash (Value.List key) in
          let rec find = function
            | [] -> None
            | (k, _) :: _ when List.for_all2 Value.equal k key ->
                Some h
            | _ :: rest -> find rest
          in
          match find (Hashtbl.find_all groups h) with
          | Some _ ->
              let k, rows = Hashtbl.find groups h in
              Hashtbl.replace groups h (k, r :: rows)
          | None ->
              Hashtbl.add groups h (key, [ r ]);
              order := h :: !order)
        rs.rows;
      let agg_value rows = function
        | Count -> Value.Int (List.length rows)
        | First c -> (
            match List.rev rows with [] -> Value.Null | r :: _ -> env r c)
        | Iset_union c ->
            let sets =
              List.filter_map (fun r -> Ivalue.to_interval_set (env r c)) rows
            in
            Ivalue.of_interval_set
              (List.fold_left Interval_set.union Interval_set.empty sets)
        | Min c ->
            List.fold_left
              (fun acc r ->
                let v = env r c in
                if v = Value.Null then acc
                else if acc = Value.Null || Value.compare v acc < 0 then v
                else acc)
              Value.Null rows
        | Max c ->
            List.fold_left
              (fun acc r ->
                let v = env r c in
                if v = Value.Null then acc
                else if acc = Value.Null || Value.compare v acc > 0 then v
                else acc)
              Value.Null rows
        | Sum c ->
            List.fold_left
              (fun acc r ->
                match (acc, env r c) with
                | Value.Int a, Value.Int b -> Value.Int (a + b)
                | Value.Float a, Value.Int b -> Value.Float (a +. float_of_int b)
                | (Value.Int _ as a), Value.Null -> a
                | Value.Int a, Value.Float b -> Value.Float (float_of_int a +. b)
                | Value.Float a, Value.Float b -> Value.Float (a +. b)
                | a, _ -> a)
              (Value.Int 0) rows
      in
      let cols = Array.of_list (group_by @ List.map fst aggs) in
      let rows =
        List.rev_map
          (fun h ->
            let key, rows = Hashtbl.find groups h in
            Array.of_list (key @ List.map (fun (_, a) -> agg_value rows a) aggs))
          !order
      in
      Ok { cols; rows }
  | Sort (input, keys) ->
      let* rs = run db input in
      let env = env_of rs.cols in
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (e, dir) :: rest -> (
              let c = Value.compare (Expr.eval (env a) e) (Expr.eval (env b) e) in
              let c = match dir with `Asc -> c | `Desc -> -c in
              match c with 0 -> go rest | c -> c)
        in
        go keys
      in
      Ok { rs with rows = List.stable_sort cmp rs.rows }
  | Limit (input, n) ->
      let* rs = run db input in
      Ok { rs with rows = List.filteri (fun i _ -> i < n) rs.rows }

(* Build (and cache) the hash side of a join. The cache key is the
   plan's SQL text plus the key expression; entries are invalidated by
   table version counters — the engine's analog of an index. *)
and build_side db right right_key =
  let key = to_sql right ^ "|#|" ^ Expr.to_sql right_key in
  let deps =
    List.sort_uniq compare (tables_of db right)
    |> List.filter_map (fun name ->
           match Database.table db name with
           | Ok tbl -> Some (name, Table.version tbl)
           | Error _ -> None)
  in
  let cache = Database.join_cache db in
  match Hashtbl.find_opt cache key with
  | Some entry when entry.Join_cache.deps = deps ->
      Ok (entry.Join_cache.cols, entry.Join_cache.buckets)
  | _ ->
      let* rrs = run db right in
      let renv = env_of rrs.cols in
      let buckets = Hashtbl.create (max 16 (List.length rrs.rows)) in
      List.iter
        (fun r ->
          let k = Expr.eval (renv r) right_key in
          if k <> Value.Null then begin
            let h = Value.hash k in
            let existing =
              match Hashtbl.find_opt buckets h with Some l -> l | None -> []
            in
            Hashtbl.replace buckets h ((k, r) :: existing)
          end)
        rrs.rows;
      Hashtbl.replace cache key
        { Join_cache.deps; buckets; cols = rrs.cols };
      Ok (rrs.cols, buckets)

let run_exn db plan =
  match run db plan with
  | Ok rs -> rs
  | Error e -> invalid_arg ("Plan.run_exn: " ^ e)

let create_temp db plan =
  let* rs = run db plan in
  let name = Database.fresh_temp_name db in
  let* () =
    Database.create_table db ~temp:true ~name (Array.to_list rs.cols)
  in
  let* tbl = Database.table db name in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        Table.insert_row tbl row)
      (Ok ()) rs.rows
  in
  Ok name


lib/relational/temporal_tables.ml: Array Database Expr Hashtbl Ivalue List Nepal_schema Nepal_temporal Option Plan Printf Result Table

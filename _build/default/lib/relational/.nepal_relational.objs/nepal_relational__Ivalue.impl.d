lib/relational/ivalue.ml: Fun List Nepal_schema Nepal_temporal Option

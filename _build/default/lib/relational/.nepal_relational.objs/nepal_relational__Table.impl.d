lib/relational/table.ml: Array List Nepal_schema Printf

lib/relational/join_cache.ml: Hashtbl Nepal_schema

lib/relational/expr.mli: Nepal_schema

lib/relational/plan.mli: Database Expr Nepal_schema

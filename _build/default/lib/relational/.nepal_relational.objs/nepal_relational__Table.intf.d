lib/relational/table.mli: Nepal_schema

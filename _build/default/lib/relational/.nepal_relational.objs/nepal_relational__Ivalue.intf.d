lib/relational/ivalue.mli: Nepal_schema Nepal_temporal

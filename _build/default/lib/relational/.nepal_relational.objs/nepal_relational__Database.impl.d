lib/relational/database.ml: Array Hashtbl Join_cache List Nepal_schema Printf String Table

lib/relational/plan.ml: Array Database Expr Hashtbl Ivalue Join_cache List Nepal_schema Nepal_temporal Printf Result String Table

lib/relational/temporal_tables.mli: Database Expr Nepal_schema Nepal_temporal Plan

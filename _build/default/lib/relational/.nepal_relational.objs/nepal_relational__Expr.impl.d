lib/relational/expr.ml: Ivalue List Nepal_schema Nepal_temporal Nepal_util Printf String

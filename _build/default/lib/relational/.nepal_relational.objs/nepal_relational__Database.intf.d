lib/relational/database.mli: Join_cache Nepal_schema Table

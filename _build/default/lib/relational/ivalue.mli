(** Encoding of transaction-time intervals and interval sets as plain
    {!Nepal_schema.Value} data, so they can live in relational rows (the
    analog of Postgres [tstzrange] columns used by the paper's
    [temporal_tables] extension). *)

module Value = Nepal_schema.Value
module Interval = Nepal_temporal.Interval
module Interval_set = Nepal_temporal.Interval_set
module Time_point = Nepal_temporal.Time_point

val of_interval : Interval.t -> Value.t
val to_interval : Value.t -> Interval.t option

val of_interval_set : Interval_set.t -> Value.t
val to_interval_set : Value.t -> Interval_set.t option

val inter : Value.t -> Value.t -> Value.t
(** Interval-set intersection on encoded values; [Null] when either
    side fails to decode. *)

val nonempty : Value.t -> bool
val contains : Value.t -> Time_point.t -> bool
(** Interval (not set) membership, Postgres [sys_period @> t]. *)

val overlaps_window : Value.t -> Time_point.t -> Time_point.t -> bool
val restrict_window : Value.t -> Time_point.t -> Time_point.t -> Value.t
(** Interval clipped to [\[a,b)] and promoted to a singleton set. *)

val is_current : Value.t -> bool

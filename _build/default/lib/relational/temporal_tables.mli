(** The analog of the Postgres [temporal_tables] extension used by the
    paper (Section 5.3): each temporal table [t] is a pair of heap
    tables — [t] holding current versions and [t__history] holding
    closed versions — plus a [t__historical] union view. Every row
    carries a [sys_period] transaction-time column maintained by this
    module. INHERITS hierarchies are mirrored onto the history tables. *)

module Value = Nepal_schema.Value
module Time_point = Nepal_temporal.Time_point
module Time_constraint = Nepal_temporal.Time_constraint

val sys_period_col : string
(** ["sys_period"] — appended automatically; caller columns must not
    use the name. *)

val history_name : string -> string
(** [t__history]. *)

val create :
  Database.t -> ?parent:string -> name:string -> string list ->
  (unit, string) result
(** [parent], when given, must itself be a temporal table. *)

val insert :
  Database.t -> string -> at:Time_point.t ->
  (string * Value.t) list -> (unit, string) result

val update :
  Database.t -> string -> at:Time_point.t -> where_:Expr.t ->
  set:(string * Value.t) list -> (int, string) result
(** Matching current rows get a closed copy in the history table and
    updated fields with a fresh open [sys_period]. Matches only rows of
    the named table itself, not INHERITS children (mirror Postgres
    [UPDATE ONLY]). Returns the match count. *)

val delete :
  Database.t -> string -> at:Time_point.t -> where_:Expr.t ->
  (int, string) result

val current : Database.t -> string -> Plan.t
(** Scan of current versions (including INHERITS children). *)

val historical : Database.t -> string -> Plan.t
(** The [t__historical] view: current UNION ALL history. *)

val slice : Database.t -> string -> Time_constraint.t -> Plan.t
(** The plan reading exactly the versions visible under the constraint:
    current for [Snapshot]; historical filtered by [sys_period @> t]
    for [At]; historical filtered by window overlap for [Range]. *)

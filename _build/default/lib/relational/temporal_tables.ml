module Value = Nepal_schema.Value
module Time_point = Nepal_temporal.Time_point
module Time_constraint = Nepal_temporal.Time_constraint
module Interval = Nepal_temporal.Interval

let sys_period_col = "sys_period"
let history_name t = t ^ "__history"

let ( let* ) = Result.bind

let create db ?parent ~name cols =
  if List.mem sys_period_col cols then
    Error (Printf.sprintf "column name %S is reserved" sys_period_col)
  else
    let full = cols @ [ sys_period_col ] in
    let* () = Database.create_table db ?parent ~name full in
    Database.create_table db
      ?parent:(Option.map history_name parent)
      ~name:(history_name name) full

let insert db name ~at bindings =
  let period = Ivalue.of_interval (Interval.from at) in
  Database.insert db name ((sys_period_col, period) :: bindings)

let close_period row idx at =
  match Ivalue.to_interval row.(idx) with
  | Some iv when Interval.is_current iv ->
      Some (Ivalue.of_interval (Interval.close iv at))
  | _ -> None

let matching_pred tbl where_ =
  let cols = tbl.Table.cols in
  let index = Hashtbl.create (Array.length cols) in
  Array.iteri (fun i c -> Hashtbl.replace index c i) cols;
  fun row ->
    Expr.eval_bool
      (fun c ->
        match Hashtbl.find_opt index c with
        | Some i -> row.(i)
        | None -> Value.Null)
      where_

let update db name ~at ~where_ ~set =
  let* tbl = Database.table db name in
  let* hist = Database.table db (history_name name) in
  let pred = matching_pred tbl where_ in
  let* sys_idx =
    match Table.col_index tbl sys_period_col with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%S is not a temporal table" name)
  in
  let* set_indexed =
    List.fold_left
      (fun acc (c, v) ->
        let* acc = acc in
        match Table.col_index tbl c with
        | Some i -> Ok ((i, v) :: acc)
        | None -> Error (Printf.sprintf "table %S has no column %S" name c))
      (Ok []) set
  in
  let n =
    Table.update_where tbl pred (fun row ->
        (match close_period row sys_idx at with
        | Some closed ->
            let archived = Array.copy row in
            archived.(sys_idx) <- closed;
            ignore (Table.insert_row hist archived)
        | None -> ());
        let row' = Array.copy row in
        List.iter (fun (i, v) -> row'.(i) <- v) set_indexed;
        row'.(sys_idx) <- Ivalue.of_interval (Interval.from at);
        row')
  in
  Ok n

let delete db name ~at ~where_ =
  let* tbl = Database.table db name in
  let* hist = Database.table db (history_name name) in
  let pred = matching_pred tbl where_ in
  let* sys_idx =
    match Table.col_index tbl sys_period_col with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%S is not a temporal table" name)
  in
  let n =
    Table.delete_where tbl (fun row ->
        if pred row then begin
          (match close_period row sys_idx at with
          | Some closed ->
              let archived = Array.copy row in
              archived.(sys_idx) <- closed;
              ignore (Table.insert_row hist archived)
          | None -> ());
          true
        end
        else false)
  in
  Ok n

let current _db name = Plan.Scan { table = name; only = false }

let historical _db name =
  Plan.Union_all
    [
      Plan.Scan { table = name; only = false };
      Plan.Scan { table = history_name name; only = false };
    ]

let slice db name (tc : Time_constraint.t) =
  match tc with
  | Time_constraint.Snapshot -> current db name
  | Time_constraint.At t ->
      Plan.Filter
        ( historical db name,
          Expr.Period_contains (Expr.Col sys_period_col, Expr.Const (Value.Time t)) )
  | Time_constraint.Range (a, b) ->
      Plan.Filter
        ( historical db name,
          Expr.Period_overlaps
            ( Expr.Col sys_period_col,
              Expr.Const (Value.Time a),
              Expr.Const (Value.Time b) ) )

module Value = Nepal_schema.Value
module Interval = Nepal_temporal.Interval
module Interval_set = Nepal_temporal.Interval_set
module Time_point = Nepal_temporal.Time_point

let of_interval (iv : Interval.t) =
  Value.List
    [
      Value.Time iv.start;
      (match iv.stop with None -> Value.Null | Some e -> Value.Time e);
    ]

let to_interval = function
  | Value.List [ Value.Time s; Value.Null ] -> Some (Interval.from s)
  | Value.List [ Value.Time s; Value.Time e ] when Time_point.compare s e < 0 ->
      Some (Interval.between s e)
  | _ -> None

let of_interval_set s =
  Value.List (List.map of_interval (Interval_set.to_list s))

let to_interval_set = function
  | Value.List items ->
      let decoded = List.map to_interval items in
      if List.exists Option.is_none decoded then None
      else Some (Interval_set.of_list (List.filter_map Fun.id decoded))
  | _ -> None

let inter a b =
  match (to_interval_set a, to_interval_set b) with
  | Some x, Some y -> of_interval_set (Interval_set.inter x y)
  | _ -> Value.Null

let nonempty v =
  match to_interval_set v with
  | Some s -> not (Interval_set.is_empty s)
  | None -> false

let contains v tp =
  match to_interval v with Some iv -> Interval.contains iv tp | None -> false

let overlaps_window v a b =
  match to_interval v with
  | Some iv -> Interval.overlaps iv (Interval.between a b)
  | None -> false

let restrict_window v a b =
  match to_interval v with
  | Some iv -> (
      match Interval.intersect iv (Interval.between a b) with
      | Some clipped -> of_interval_set (Interval_set.singleton clipped)
      | None -> of_interval_set Interval_set.empty)
  | None -> Value.Null

let is_current v =
  match to_interval v with Some iv -> Interval.is_current iv | None -> false

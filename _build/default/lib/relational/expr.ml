module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Const of Value.t
  | Cmp of t * comparison * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arr_lit of t list
  | Arr_concat of t * t
  | Arr_contains of t * t
  | Data_field of t * string
  | Period_contains of t * t
  | Period_is_current of t
  | Period_overlaps of t * t * t
  | Period_clip of t * t * t
  | Iset_inter of t * t
  | Iset_nonempty of t

type row_env = string -> Value.t

let compare_op op a b =
  if a = Value.Null || b = Value.Null then false
  else
    let c = Value.compare a b in
    match op with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

let rec eval env = function
  | Col c -> env c
  | Const v -> v
  | Cmp (a, op, b) -> Value.Bool (compare_op op (eval env a) (eval env b))
  | And (a, b) -> Value.Bool (to_bool (eval env a) && to_bool (eval env b))
  | Or (a, b) -> Value.Bool (to_bool (eval env a) || to_bool (eval env b))
  | Not a -> Value.Bool (not (to_bool (eval env a)))
  | Arr_lit es -> Value.List (List.map (eval env) es)
  | Arr_concat (a, b) -> (
      match (eval env a, eval env b) with
      | Value.List x, Value.List y -> Value.List (x @ y)
      | _ -> Value.Null)
  | Arr_contains (x, arr) -> (
      match eval env arr with
      | Value.List items ->
          let v = eval env x in
          Value.Bool (List.exists (Value.equal v) items)
      | _ -> Value.Bool false)
  | Data_field (e, f) -> (
      match eval env e with
      | Value.Data (_, fields) -> Strmap.find_opt_or f ~default:Value.Null fields
      | _ -> Value.Null)
  | Period_contains (p, t) -> (
      match eval env t with
      | Value.Time tp -> Value.Bool (Ivalue.contains (eval env p) tp)
      | _ -> Value.Bool false)
  | Period_is_current p -> Value.Bool (Ivalue.is_current (eval env p))
  | Period_overlaps (p, a, b) -> (
      match (eval env a, eval env b) with
      | Value.Time ta, Value.Time tb ->
          Value.Bool (Ivalue.overlaps_window (eval env p) ta tb)
      | _ -> Value.Bool false)
  | Period_clip (p, a, b) -> (
      match (eval env a, eval env b) with
      | Value.Time ta, Value.Time tb -> Ivalue.restrict_window (eval env p) ta tb
      | _ -> Value.Null)
  | Iset_inter (a, b) -> Ivalue.inter (eval env a) (eval env b)
  | Iset_nonempty a -> Value.Bool (Ivalue.nonempty (eval env a))

and to_bool = function Value.Bool b -> b | _ -> false

let eval_bool env e = to_bool (eval env e)

let conj = function
  | [] -> Const (Value.Bool true)
  | first :: rest -> List.fold_left (fun acc e -> And (acc, e)) first rest

let tt = Const (Value.Bool true)

let columns e =
  let rec collect acc = function
    | Col c -> c :: acc
    | Const _ -> acc
    | Cmp (a, _, b) | And (a, b) | Or (a, b) | Arr_concat (a, b)
    | Arr_contains (a, b) | Period_contains (a, b) | Iset_inter (a, b) ->
        collect (collect acc a) b
    | Not a | Data_field (a, _) | Period_is_current a | Iset_nonempty a ->
        collect acc a
    | Arr_lit es -> List.fold_left collect acc es
    | Period_overlaps (a, b, c) | Period_clip (a, b, c) ->
        collect (collect (collect acc a) b) c
  in
  List.sort_uniq String.compare (collect [] e)

let comparison_sql = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let sql_string_literal s =
  "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

let rec value_sql = function
  | Value.Null -> "NULL"
  | Value.Bool b -> if b then "true" else "false"
  | Value.Int i -> string_of_int i
  | Value.Float f -> string_of_float f
  | Value.Str s -> sql_string_literal s
  | Value.Ip ip -> sql_string_literal (Value.ip_to_string ip)
  | Value.Time t ->
      sql_string_literal (Nepal_temporal.Time_point.to_string t) ^ "::timestamptz"
  | Value.List items | Value.Vset items ->
      "ARRAY[" ^ String.concat ", " (List.map value_sql items) ^ "]"
  | Value.Vmap _ | Value.Data _ as v ->
      sql_string_literal (Value.to_string v) ^ "::jsonb"

let rec to_sql = function
  | Col c -> c
  | Const v -> value_sql v
  | Cmp (a, op, b) ->
      Printf.sprintf "%s %s %s" (to_sql a) (comparison_sql op) (to_sql b)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_sql a) (to_sql b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_sql a) (to_sql b)
  | Not a -> Printf.sprintf "NOT (%s)" (to_sql a)
  | Arr_lit es -> "ARRAY[" ^ String.concat ", " (List.map to_sql es) ^ "]"
  | Arr_concat (a, b) -> Printf.sprintf "%s || %s" (to_sql a) (to_sql b)
  | Arr_contains (x, arr) ->
      Printf.sprintf "%s = ANY(%s)" (to_sql x) (to_sql arr)
  | Data_field (e, f) -> Printf.sprintf "(%s).%s" (to_sql e) f
  | Period_contains (p, t) -> Printf.sprintf "%s @> %s" (to_sql p) (to_sql t)
  | Period_is_current p -> Printf.sprintf "upper_inf(%s)" (to_sql p)
  | Period_overlaps (p, a, b) ->
      Printf.sprintf "%s && tstzrange(%s, %s)" (to_sql p) (to_sql a) (to_sql b)
  | Period_clip (p, a, b) ->
      Printf.sprintf "%s * tstzrange(%s, %s)" (to_sql p) (to_sql a) (to_sql b)
  | Iset_inter (a, b) -> Printf.sprintf "range_intersect_agg(%s, %s)" (to_sql a) (to_sql b)
  | Iset_nonempty a -> Printf.sprintf "NOT isempty(%s)" (to_sql a)

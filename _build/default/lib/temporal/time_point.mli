(** Transaction-time instants.

    A time point is a count of microseconds since the Unix epoch. The
    textual form accepted and produced is the one the paper uses in
    queries: ["2017-02-15 10:00:00"] (seconds optional, a fractional
    part after the seconds is accepted). *)

type t = int64

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val epoch : t
(** 1970-01-01 00:00:00. *)

val of_unix_seconds : float -> t
val to_unix_seconds : t -> float

val add_seconds : t -> float -> t
val add_days : t -> int -> t
val diff_seconds : t -> t -> float
(** [diff_seconds a b] is [a - b] in seconds. *)

val of_string : string -> (t, string) result
(** Parse ["YYYY-MM-DD HH:MM[:SS[.ffffff]]"] or ["YYYY-MM-DD"],
    interpreted as UTC. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Render as ["YYYY-MM-DD HH:MM:SS"] (microseconds appended only when
    non-zero). *)

val pp : Format.formatter -> t -> unit

type t = { start : Time_point.t; stop : Time_point.t option }

let make start stop =
  (match stop with
  | Some e when Time_point.compare e start <= 0 ->
      invalid_arg "Interval.make: empty interval"
  | _ -> ());
  { start; stop }

let from start = { start; stop = None }

let between start stop = make start (Some stop)

let is_current t = t.stop = None

let contains t at =
  Time_point.compare t.start at <= 0
  && match t.stop with None -> true | Some e -> Time_point.compare at e < 0

let overlaps a b =
  let a_before_b_end =
    match b.stop with None -> true | Some e -> Time_point.compare a.start e < 0
  in
  let b_before_a_end =
    match a.stop with None -> true | Some e -> Time_point.compare b.start e < 0
  in
  a_before_b_end && b_before_a_end

let intersect a b =
  if not (overlaps a b) then None
  else
    let start = Time_point.max a.start b.start in
    let stop =
      match (a.stop, b.stop) with
      | None, None -> None
      | Some e, None | None, Some e -> Some e
      | Some e1, Some e2 -> Some (Time_point.min e1 e2)
    in
    Some { start; stop }

let close t at =
  match t.stop with
  | Some _ -> invalid_arg "Interval.close: already closed"
  | None ->
      if Time_point.compare at t.start <= 0 then
        invalid_arg "Interval.close: close time before start"
      else { t with stop = Some at }

let duration_seconds ~now t =
  let stop = match t.stop with Some e -> e | None -> now in
  Time_point.diff_seconds stop t.start

let equal a b =
  Time_point.equal a.start b.start
  &&
  match (a.stop, b.stop) with
  | None, None -> true
  | Some x, Some y -> Time_point.equal x y
  | _ -> false

let compare a b =
  match Time_point.compare a.start b.start with
  | 0 -> (
      match (a.stop, b.stop) with
      | None, None -> 0
      | None, Some _ -> 1
      | Some _, None -> -1
      | Some x, Some y -> Time_point.compare x y)
  | c -> c

let to_string t =
  match t.stop with
  | None -> Printf.sprintf "[%s, )" (Time_point.to_string t.start)
  | Some e ->
      Printf.sprintf "[%s, %s)" (Time_point.to_string t.start)
        (Time_point.to_string e)

let pp ppf t = Format.pp_print_string ppf (to_string t)

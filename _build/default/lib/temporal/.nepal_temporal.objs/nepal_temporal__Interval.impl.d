lib/temporal/interval.ml: Format Printf Time_point

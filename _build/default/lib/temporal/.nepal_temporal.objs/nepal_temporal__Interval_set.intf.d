lib/temporal/interval_set.mli: Format Interval Time_point

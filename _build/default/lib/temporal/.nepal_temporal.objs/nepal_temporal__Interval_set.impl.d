lib/temporal/interval_set.ml: Format Interval List Time_point

lib/temporal/interval.mli: Format Time_point

lib/temporal/time_constraint.ml: Format Interval Time_point

lib/temporal/time_constraint.mli: Format Interval Time_point

lib/temporal/time_point.mli: Format

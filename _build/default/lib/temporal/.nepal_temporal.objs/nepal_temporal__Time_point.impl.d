lib/temporal/time_point.ml: Char Format Int64 List Printf String

type t =
  | Snapshot
  | At of Time_point.t
  | Range of Time_point.t * Time_point.t

let snapshot = Snapshot
let at t = At t

let range a b =
  if Time_point.compare b a <= 0 then invalid_arg "Time_constraint.range: empty"
  else Range (a, b)

let needs_history = function Snapshot -> false | At _ | Range _ -> true

let admits t (iv : Interval.t) =
  match t with
  | Snapshot -> Interval.is_current iv
  | At p -> Interval.contains iv p
  | Range (a, b) -> Interval.overlaps iv (Interval.between a b)

let restrict t (iv : Interval.t) =
  match t with
  | Snapshot -> if Interval.is_current iv then Some iv else None
  | At p -> if Interval.contains iv p then Some iv else None
  | Range (a, b) ->
      (* The paper's time-range queries report the *maximal* range a
         pathway held, which can extend beyond the query window (the
         window only decides qualification). *)
      if Interval.overlaps iv (Interval.between a b) then Some iv else None

let equal a b =
  match (a, b) with
  | Snapshot, Snapshot -> true
  | At x, At y -> Time_point.equal x y
  | Range (x, y), Range (x', y') ->
      Time_point.equal x x' && Time_point.equal y y'
  | (Snapshot | At _ | Range _), _ -> false

let pp ppf = function
  | Snapshot -> Format.pp_print_string ppf "SNAPSHOT"
  | At p -> Format.fprintf ppf "AT '%a'" Time_point.pp p
  | Range (a, b) ->
      Format.fprintf ppf "AT '%a' : '%a'" Time_point.pp a Time_point.pp b

(** Half-open transaction-time intervals [start, stop).

    A record version in the temporal store carries the interval during
    which it was the current version ([sys_period] in the paper's
    Postgres implementation). An interval whose end is [None] is still
    open — the version is current. *)

type t = { start : Time_point.t; stop : Time_point.t option }

val make : Time_point.t -> Time_point.t option -> t
(** @raise Invalid_argument if [stop <= start]. *)

val from : Time_point.t -> t
(** Open interval starting at the given instant. *)

val between : Time_point.t -> Time_point.t -> t
(** Closed-ended interval. @raise Invalid_argument if empty. *)

val is_current : t -> bool
(** True when the interval is still open. *)

val contains : t -> Time_point.t -> bool
(** Membership of an instant, [start <= t < stop]. This is Postgres'
    [sys_period @> t]. *)

val overlaps : t -> t -> bool
(** Non-empty intersection. *)

val intersect : t -> t -> t option
(** Intersection, [None] when disjoint. *)

val close : t -> Time_point.t -> t
(** [close t at] ends an open interval. @raise Invalid_argument when
    already closed or [at <= start]. *)

val duration_seconds : now:Time_point.t -> t -> float
(** Length in seconds; open intervals are measured up to [now]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** The temporal scope under which a query (or one pathway variable of a
    query) is evaluated.

    - [Snapshot] reads the current state only — the default.
    - [At t] is a timeslice (time-point) query: every node and edge used
      must have existed at instant [t].
    - [Range (a, b)] is a time-range query: pathways that existed at some
      point within [a, b] qualify, and each result is tagged with the
      maximal interval during which it held. *)

type t =
  | Snapshot
  | At of Time_point.t
  | Range of Time_point.t * Time_point.t

val snapshot : t
val at : Time_point.t -> t
val range : Time_point.t -> Time_point.t -> t
(** @raise Invalid_argument when the range is empty. *)

val needs_history : t -> bool
(** Whether evaluation must consult historical versions (true for [At]
    and [Range]). *)

val admits : t -> Interval.t -> bool
(** Does a record version with the given validity interval qualify
    under this constraint? *)

val restrict : t -> Interval.t -> Interval.t option
(** [Some] of the version's {e full} validity interval when it
    qualifies under the constraint, [None] otherwise. Under [Range]
    a version qualifies when it overlaps the window, but its whole
    interval is kept — time-range results report maximal ranges
    (Section 4). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

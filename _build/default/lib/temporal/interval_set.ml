type t = Interval.t list
(* Invariant: sorted by start, pairwise disjoint and non-adjacent. *)

let empty = []
let is_empty t = t = []
let singleton i = [ i ]
let to_list t = t
let cardinality = List.length

(* Two intervals can be merged when they overlap or touch. *)
let mergeable (a : Interval.t) (b : Interval.t) =
  match a.stop with
  | None -> true
  | Some e -> Time_point.compare b.start e <= 0

let merge (a : Interval.t) (b : Interval.t) : Interval.t =
  let stop =
    match (a.stop, b.stop) with
    | None, _ | _, None -> None
    | Some x, Some y -> Some (Time_point.max x y)
  in
  { start = Time_point.min a.start b.start; stop }

let normalize intervals =
  let sorted = List.sort Interval.compare intervals in
  let rec loop acc = function
    | [] -> List.rev acc
    | i :: rest -> (
        match acc with
        | prev :: acc' when mergeable prev i -> loop (merge prev i :: acc') rest
        | _ -> loop (i :: acc) rest)
  in
  loop [] sorted

let of_list = normalize
let add i t = normalize (i :: t)
let union a b = normalize (a @ b)

let inter a b =
  let pairs =
    List.concat_map (fun ia -> List.filter_map (Interval.intersect ia) b) a
  in
  normalize pairs

let contains t at = List.exists (fun i -> Interval.contains i at) t

let first_start = function [] -> None | (i : Interval.t) :: _ -> Some i.start

let last_moment t =
  match List.rev t with
  | [] -> `Never
  | (last : Interval.t) :: _ -> (
      match last.stop with None -> `Still_exists | Some e -> `Ended e)

let total_seconds ~now t =
  List.fold_left (fun acc i -> acc +. Interval.duration_seconds ~now i) 0. t

let equal a b = List.length a = List.length b && List.for_all2 Interval.equal a b

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Interval.pp)
    t

module Schema = Nepal_schema.Schema
module Ftype = Nepal_schema.Ftype

let vnf_types =
  [
    "VNF_DNS"; "VNF_Firewall"; "VNF_LoadBalancer"; "VNF_NAT"; "VNF_IDS";
    "VNF_Proxy"; "VNF_EPC_MME"; "VNF_EPC_SGW"; "VNF_EPC_PGW"; "VNF_EPC_HSS";
    "VNF_Router"; "VNF_Gateway";
  ]

let vfc_types =
  [
    "VFC_Web"; "VFC_Proxy"; "VFC_DB"; "VFC_Cache"; "VFC_Worker";
    "VFC_Controller"; "VFC_Monitor"; "VFC_Logger"; "VFC_Queue"; "VFC_Gateway";
  ]

let vm_types = [ "VM_VMWare"; "VM_OnMetal"; "VM_KVM" ]

let id_name_fields = [ ("id", Ftype.T_int); ("name", Ftype.T_string) ]

let schema () =
  let cd = Schema.class_decl in
  let node_classes =
    (* Service layer. *)
    [
      cd "NetworkService" ~parent:"Node"
        ~fields:(id_name_fields @ [ ("customer", Ftype.T_string) ]);
      cd "VNF" ~parent:"Node" ~abstract:true
        ~fields:(id_name_fields @ [ ("status", Ftype.T_string) ])
        ~cardinality_hint:50;
    ]
    @ List.map (fun t -> cd t ~parent:"VNF") vnf_types
    (* Logical layer. *)
    @ [
        cd "VFC" ~parent:"Node" ~abstract:true
          ~fields:(id_name_fields @ [ ("status", Ftype.T_string) ])
          ~cardinality_hint:300;
      ]
    @ List.map (fun t -> cd t ~parent:"VFC") vfc_types
    (* Virtualization layer. *)
    @ [
        cd "Container" ~parent:"Node" ~abstract:true
          ~fields:(id_name_fields @ [ ("status", Ftype.T_string); ("ip", Ftype.T_ip) ])
          ~cardinality_hint:500;
        cd "VM" ~parent:"Container" ~abstract:true;
      ]
    @ List.map (fun t -> cd t ~parent:"VM") vm_types
    @ [
        cd "Docker" ~parent:"Container";
        cd "VirtualNetwork" ~parent:"Node"
          ~fields:(id_name_fields @ [ ("cidr", Ftype.T_string) ]);
        cd "VirtualRouter" ~parent:"Node" ~fields:id_name_fields;
        cd "VNIC" ~parent:"Node"
          ~fields:(id_name_fields @ [ ("mac", Ftype.T_string) ]);
        cd "VirtualVolume" ~parent:"Node"
          ~fields:(id_name_fields @ [ ("size_gb", Ftype.T_int) ]);
        (* Physical layer. *)
        cd "PhysicalElement" ~parent:"Node" ~abstract:true
          ~fields:id_name_fields;
        cd "Server" ~parent:"PhysicalElement" ~abstract:true
          ~fields:[ ("cpu_cores", Ftype.T_int) ]
          ~cardinality_hint:200;
        cd "Server_Blade" ~parent:"Server";
        cd "Server_Rackmount" ~parent:"Server";
        cd "Switch" ~parent:"PhysicalElement" ~abstract:true;
        cd "Switch_TOR" ~parent:"Switch";
        cd "Switch_Spine" ~parent:"Switch";
        cd "Router" ~parent:"PhysicalElement"
          ~fields:[ ("routingTable", Ftype.T_list (Ftype.T_data "routingTableEntry")) ];
        cd "PhysicalPort" ~parent:"PhysicalElement"
          ~fields:[ ("speed_gbps", Ftype.T_int) ];
        cd "Chassis" ~parent:"PhysicalElement";
        cd "Rack" ~parent:"PhysicalElement";
        cd "DataCenter" ~parent:"PhysicalElement"
          ~fields:[ ("region", Ftype.T_string) ];
        cd "PowerSupply" ~parent:"PhysicalElement";
        cd "Firewall_Appliance" ~parent:"PhysicalElement";
        cd "LoadBalancer_Appliance" ~parent:"PhysicalElement";
        cd "StorageArray" ~parent:"PhysicalElement";
        cd "Hypervisor" ~parent:"PhysicalElement";
        cd "Zone" ~parent:"Node" ~fields:id_name_fields;
        cd "Tenant" ~parent:"Node" ~fields:id_name_fields;
      ]
  in
  let edge_classes =
    [
      cd "Vertical" ~parent:"Edge" ~abstract:true;
      cd "ComposedOf" ~parent:"Vertical";
      cd "HostedOn" ~parent:"Vertical" ~abstract:true;
      cd "OnVM" ~parent:"HostedOn";
      cd "OnServer" ~parent:"HostedOn";
      cd "PartOf" ~parent:"Vertical";
      cd "ConnectedTo" ~parent:"Edge" ~abstract:true;
      cd "Connects" ~parent:"ConnectedTo"
        ~fields:[ ("bandwidth_gbps", Ftype.T_int) ];
      cd "VirtualLink" ~parent:"ConnectedTo"
        ~fields:[ ("ip", Ftype.T_ip) ];
      cd "ServiceLink" ~parent:"ConnectedTo";
      cd "LogicalLink" ~parent:"ConnectedTo";
      cd "Attaches" ~parent:"ConnectedTo";
    ]
  in
  let r edge src dst = { Schema.edge; src; dst } in
  let edge_rules =
    [
      (* Vertical structure per Figure 3. *)
      r "ComposedOf" "NetworkService" "VNF";
      r "ComposedOf" "VNF" "VFC";
      r "OnVM" "VFC" "Container";
      r "OnServer" "Container" "Server";
      r "PartOf" "Server" "Rack";
      r "PartOf" "Switch" "Rack";
      r "PartOf" "Rack" "DataCenter";
      r "PartOf" "PhysicalPort" "Server";
      r "PartOf" "PhysicalPort" "Switch";
      r "PartOf" "VirtualVolume" "StorageArray";
      (* Physical connectivity. *)
      r "Connects" "Server" "Switch";
      r "Connects" "Switch" "Server";
      r "Connects" "Switch" "Switch";
      r "Connects" "Switch" "Router";
      r "Connects" "Router" "Switch";
      r "Connects" "Router" "Router";
      (* Virtual connectivity. *)
      r "VirtualLink" "Container" "VirtualNetwork";
      r "VirtualLink" "VirtualNetwork" "Container";
      r "VirtualLink" "VirtualNetwork" "VirtualRouter";
      r "VirtualLink" "VirtualRouter" "VirtualNetwork";
      (* Service and logical flows. *)
      r "ServiceLink" "VNF" "VNF";
      r "LogicalLink" "VFC" "VFC";
      (* Attachments. *)
      r "Attaches" "VNIC" "Container";
      r "Attaches" "VNIC" "VirtualNetwork";
      r "Attaches" "Container" "VirtualVolume";
    ]
  in
  let data_types =
    [
      Schema.data_decl "routingTableEntry"
        ~fields:
          [
            ("address", Ftype.T_ip);
            ("mask", Ftype.T_int);
            ("interface", Ftype.T_string);
          ];
    ]
  in
  Schema.create_exn ~data_types ~edge_rules (node_classes @ edge_classes)

let node_class_count = 54
let edge_class_count = 12

let tosca () = Nepal_schema.Tosca.render (schema ())

(** Synthetic stand-in for the paper's legacy network topology
    (Section 6, Table 2): a flat graph supplied as one node class and
    one edge class whose edges carry a [type_indicator] field with 66
    distinct values, loadable either as-provided ({!Flat}) or with one
    edge subclass per indicator ({!Classed}) — the re-classing
    experiment.

    The generator reproduces the structural features behind the paper's
    measurements: funnel-shaped service chains (forward service paths
    are cheap, reverse service paths explode), a 3-hop vertical
    hierarchy, and hub nodes with very large numbers of incoming
    edges almost all of which are irrelevant to any query — the cause
    of the slow bottom-up samples. The paper's graph has 1.6 M nodes and
    7.1 M edges; [nodes] scales the whole structure down
    proportionally. *)

module Store = Nepal_store.Graph_store
module Prng = Nepal_util.Prng

type mode = Flat | Classed

val indicator_count : int
(** 66, as in the paper. *)

val indicators : string list
(** All [type_indicator] values, structural first. *)

val schema : mode -> Nepal_schema.Schema.t
val edge_class_of_indicator : string -> string
(** The edge subclass carrying edges of that indicator in {!Classed}
    mode. *)

type t = {
  store : Store.t;
  mode : mode;
  service_source_ids : int array;  (** tier-1 service nodes *)
  service_sink_ids : int array;    (** final-tier service nodes *)
  top_ids : int array;             (** service nodes with vertical chains *)
  physical_ids : int array;
  hub_ids : int array;
      (** logical-layer hub nodes with heavy noise in-degree through
          which a third of the vertical chains route *)
  chain_end_ids : int array;
      (** physical endpoint of each vertical chain, with multiplicity —
          the bottom-up instance population (a third land on hubs) *)
}

val generate : ?seed:int -> ?nodes:int -> mode -> t
(** Default [nodes] = 16,000 (1/100 of the paper's graph) and the edge
    count tracks the paper's ≈4.4 edges/node. An index on
    [LegacyNode.id] is created. *)

val simulate_history : ?seed:int -> ?days:int -> ?events_per_day:int -> t -> unit
(** Churn yielding the paper's ≈16% history growth at defaults. *)

val history_overhead : t -> float

(** {1 The Table 2 workload} *)

val q_service_path : t -> src:int -> string
(** Forward, length 4, anchored at the start. *)

val q_reverse_path : t -> sink:int -> string
(** Length 4 anchored at the end — the high-fan-in mining query. *)

val q_top_down : t -> src:int -> string
(** Vertical, length 3. *)

val q_bottom_up : t -> dst:int -> string
(** Vertical, length 3, anchored at the physical end. *)

val sample_source : Prng.t -> t -> int
val sample_sink : Prng.t -> t -> int
val sample_top : Prng.t -> t -> int
val sample_physical : Prng.t -> t -> int

(** The layered network model of Figures 1–3: a Nepal schema with the
    four layers (Service, Logical, Virtualization, Physical), vertical
    HostedOn/ComposedOf relationships and horizontal connectivity, at
    the width the paper reports for its virtualized-service database
    (54 node classes and 12 edge classes). *)

val schema : unit -> Nepal_schema.Schema.t
(** Fresh instance of the model schema. *)

val node_class_count : int
(** 54 — asserted by tests. *)

val edge_class_count : int
(** 12. *)

val tosca : unit -> string
(** The schema rendered in the TOSCA-subset format. *)

(** Class-name constants used by generators and examples. *)

val vnf_types : string list
(** Concrete VNF subclasses. *)

val vfc_types : string list
val vm_types : string list

lib/netmodel/virt_service.mli: Nepal_store Nepal_temporal Nepal_util

lib/netmodel/virt_service.ml: Array List Model Nepal_schema Nepal_store Nepal_temporal Nepal_util Printf Result

lib/netmodel/legacy.ml: Array List Nepal_schema Nepal_store Nepal_temporal Nepal_util Printf

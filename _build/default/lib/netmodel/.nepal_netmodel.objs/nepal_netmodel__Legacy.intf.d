lib/netmodel/legacy.mli: Nepal_schema Nepal_store Nepal_util

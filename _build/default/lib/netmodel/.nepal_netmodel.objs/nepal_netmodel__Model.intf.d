lib/netmodel/model.mli: Nepal_schema

lib/netmodel/model.ml: List Nepal_schema

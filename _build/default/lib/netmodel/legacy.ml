module Store = Nepal_store.Graph_store
module Schema = Nepal_schema.Schema
module Ftype = Nepal_schema.Ftype
module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap
module Prng = Nepal_util.Prng
module Time_point = Nepal_temporal.Time_point
module Time_constraint = Nepal_temporal.Time_constraint

type mode = Flat | Classed

let structural_indicators = [ "service_link"; "vert_a"; "vert_b"; "vert_c" ]
let noise_indicator_count = 62
let indicator_count = List.length structural_indicators + noise_indicator_count

let noise_indicators =
  List.init noise_indicator_count (fun k -> Printf.sprintf "ref%02d" k)

let indicators = structural_indicators @ noise_indicators

let edge_class_of_indicator ind = "LE_" ^ ind

let schema mode =
  let node =
    Schema.class_decl "LegacyNode" ~parent:"Node"
      ~fields:
        [
          ("id", Ftype.T_int);
          ("name", Ftype.T_string);
          ("layer", Ftype.T_string);
        ]
  in
  match mode with
  | Flat ->
      Schema.create_exn
        [
          node;
          Schema.class_decl "LegacyEdge" ~parent:"Edge"
            ~fields:[ ("type_indicator", Ftype.T_string) ];
        ]
  | Classed ->
      Schema.create_exn
        (node
         :: Schema.class_decl "LegacyEdge" ~parent:"Edge" ~abstract:true
              ~fields:[ ("type_indicator", Ftype.T_string) ]
         :: List.map
              (fun ind ->
                Schema.class_decl (edge_class_of_indicator ind) ~parent:"LegacyEdge")
              indicators)

type t = {
  store : Store.t;
  mode : mode;
  service_source_ids : int array;
  service_sink_ids : int array;
  top_ids : int array;
  physical_ids : int array;
  hub_ids : int array;
  chain_end_ids : int array;
      (* physical endpoint of each vertical chain, with multiplicity *)
}

let born = Time_point.of_string_exn "2017-01-01 00:00:00"

let ok what = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "Legacy.%s: %s" what e)

let generate ?(seed = 7) ?(nodes = 16_000) mode =
  let rng = Prng.create seed in
  let store = Store.create (schema mode) in
  let at = born in
  let node id layer =
    ok "node"
      (Store.insert_node store ~at ~cls:"LegacyNode"
         ~fields:
           (Strmap.of_list
              [
                ("id", Value.Int id);
                ("name", Value.Str (Printf.sprintf "n%d" id));
                ("layer", Value.Str layer);
              ]))
  in
  let edge ind src dst =
    let cls, fields =
      match mode with
      | Flat ->
          ( "LegacyEdge",
            Strmap.of_list [ ("type_indicator", Value.Str ind) ] )
      | Classed ->
          ( edge_class_of_indicator ind,
            Strmap.of_list [ ("type_indicator", Value.Str ind) ] )
    in
    ignore (ok "edge" (Store.insert_edge store ~at ~cls ~src ~dst ~fields))
  in
  (* Node budget: 40% service (in a 5-tier funnel), 15% + 15% logical,
     30% physical. *)
  let next_id = ref 0 in
  let mk_group layer count =
    Array.init count (fun _ ->
        let id = !next_id in
        incr next_id;
        (id, node id layer))
  in
  let tier_fracs = [| 0.20; 0.12; 0.05; 0.02; 0.006 |] in
  let tiers =
    Array.map (fun f -> mk_group "service" (int_of_float (float_of_int nodes *. f))) tier_fracs
  in
  let l1 = mk_group "logical" (nodes * 15 / 100) in
  let l2 = mk_group "logical" (nodes * 15 / 100) in
  let phys = mk_group "physical" (nodes * 30 / 100) in
  (* Service funnel: 3 forward service_link edges per node into the
     next tier. *)
  for ti = 0 to Array.length tiers - 2 do
    Array.iter
      (fun (_, uid) ->
        for _ = 1 to 3 do
          let _, target = Prng.choose rng tiers.(ti + 1) in
          if target <> uid then edge "service_link" uid target
        done)
      tiers.(ti)
  done;
  (* A handful of logical-layer hub nodes: a third of the vertical
     chains route through them, and they also absorb most of the noise
     volume. A bottom-up walk whose chain passes through a hub must
     wade through thousands of incoming edges almost all of which are
     irrelevant to the query — the paper's bimodal 34-fast/16-slow
     samples. *)
  let hub_count = max 2 (Array.length l2 / 300) in
  let hubs = Array.sub l2 0 hub_count in
  (* Vertical chains: tier-1 service nodes own a 3-hop implementation
     chain S -vert_a-> L1 -vert_b-> L2 -vert_c-> P. *)
  let chain_ends = ref [] in
  Array.iter
    (fun (_, s_uid) ->
      let _, a = Prng.choose rng l1 in
      let _, b =
        if Prng.int rng 3 = 0 then Prng.choose rng hubs else Prng.choose rng l2
      in
      let p_id, p = Prng.choose rng phys in
      chain_ends := p_id :: !chain_ends;
      edge "vert_a" s_uid a;
      edge "vert_b" a b;
      edge "vert_c" b p)
    tiers.(0);
  (* Noise: the bulk of the edge budget, with random indicators;
     eleven twelfths of it lands on the hubs. *)
  let target_edges = nodes * 44 / 10 in
  let structural_edges = Store.count_current_total store - !next_id in
  let noise_budget = max 0 (target_edges - structural_edges) in
  let all_groups = Array.concat (Array.to_list tiers @ [ l1; l2; phys ]) in
  let noise_arr = Array.of_list noise_indicators in
  for k = 1 to noise_budget do
    let ind = Prng.choose rng noise_arr in
    let _, src = Prng.choose rng all_groups in
    let _, dst =
      if k mod 12 <> 0 then Prng.choose rng hubs else Prng.choose rng all_groups
    in
    if src <> dst then edge ind src dst
  done;
  ok "index" (Store.create_index store ~cls:"LegacyNode" ~field:"id");
  {
    store;
    mode;
    service_source_ids = Array.map fst tiers.(0);
    service_sink_ids = Array.map fst tiers.(Array.length tiers - 1);
    top_ids = Array.map fst tiers.(0);
    physical_ids = Array.map fst phys;
    hub_ids = Array.map fst hubs;
    chain_end_ids = Array.of_list !chain_ends;
  }

let simulate_history ?(seed = 11) ?(days = 60) ?(events_per_day = 0) t =
  let store = t.store in
  let rng = Prng.create seed in
  (* Default events/day sized for ~16% growth over the run. *)
  let events_per_day =
    if events_per_day > 0 then events_per_day
    else
      max 1 (Store.count_current_total store * 16 / 100 / days)
  in
  let live = Array.of_list (Store.live_uids store) in
  for day = 1 to days do
    for ev = 1 to events_per_day do
      let at =
        Time_point.add_seconds (Time_point.add_days born day)
          (float_of_int (ev * 61))
      in
      let uid = Prng.choose rng live in
      match Store.get store ~tc:Time_constraint.snapshot uid with
      | Some e when Nepal_store.Entity.is_node e ->
          ignore
            (Store.update store ~at uid
               ~fields:
                 (Strmap.of_list
                    [ ("name", Value.Str (Printf.sprintf "n%d-d%d" uid day)) ]))
      | Some _ ->
          (* Touch edge fields rarely; re-stamp the indicator. *)
          ignore
            (Store.update store ~at uid ~fields:Strmap.empty)
      | None -> ()
    done
  done

let history_overhead t =
  let entities = float_of_int (Store.count_current_total t.store) in
  let versions = float_of_int (Store.count_versions t.store) in
  (versions /. entities) -. 1.

(* ---- workload -------------------------------------------------------- *)

let service_atom t =
  match t.mode with
  | Flat -> "LegacyEdge(type_indicator='service_link')"
  | Classed -> "LE_service_link()"

let vertical_block t =
  match t.mode with
  | Flat ->
      "(LegacyEdge(type_indicator='vert_a')|LegacyEdge(type_indicator='vert_b')|LegacyEdge(type_indicator='vert_c'))"
  | Classed -> "(LE_vert_a()|LE_vert_b()|LE_vert_c())"

let q_service_path t ~src =
  Printf.sprintf
    "Retrieve P From PATHS P Where P MATCHES LegacyNode(id=%d)->[%s]{1,4}->LegacyNode()"
    src (service_atom t)

let q_reverse_path t ~sink =
  Printf.sprintf
    "Retrieve P From PATHS P Where P MATCHES LegacyNode()->[%s]{1,4}->LegacyNode(id=%d)"
    (service_atom t) sink

let q_top_down t ~src =
  Printf.sprintf
    "Retrieve P From PATHS P Where P MATCHES LegacyNode(id=%d)->[%s]{1,3}->LegacyNode(layer='physical')"
    src (vertical_block t)

let q_bottom_up t ~dst =
  Printf.sprintf
    "Retrieve P From PATHS P Where P MATCHES LegacyNode(layer='service')->[%s]{1,3}->LegacyNode(id=%d)"
    (vertical_block t) dst

let sample_source rng t = Prng.choose rng t.service_source_ids
let sample_sink rng t = Prng.choose rng t.service_sink_ids
let sample_top rng t = Prng.choose rng t.top_ids
(* Bottom-up instances sample the physical endpoints of the vertical
   chains, with multiplicity: operators troubleshoot servers in
   proportion to the services they carry, and a third of the chains end
   on the heavy hub nodes — the paper's bimodal 34-fast/16-slow split. *)
let sample_physical rng t = Prng.choose rng t.chain_end_ids

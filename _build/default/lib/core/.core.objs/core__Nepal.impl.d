lib/core/nepal.ml: List Nepal_loader Nepal_netmodel Nepal_query Nepal_rpe Nepal_schema Nepal_store Nepal_temporal Nepal_util Result

bench/profile.mli:

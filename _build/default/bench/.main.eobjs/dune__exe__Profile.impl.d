bench/profile.ml: Array Core List Nepal_loader Printf Unix

bench/main.ml: Analyze Array Bechamel Benchmark Core Float Hashtbl Lazy List Measure Nepal_loader Nepal_rpe Printf Staged String Sys Test Time Toolkit Unix

bench/main.mli:

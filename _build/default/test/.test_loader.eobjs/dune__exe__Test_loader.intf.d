test/test_loader.mli:

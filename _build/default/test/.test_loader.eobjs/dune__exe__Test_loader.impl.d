test/test_loader.ml: Alcotest Core List Nepal_loader Nepal_rpe Nepal_schema Nepal_store Nepal_temporal Option Snapshot Snapshot_loader

open Nepal_rpe
open Nepal_schema
module Strmap = Nepal_util.Strmap

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let schema () =
  Schema.create_exn
    [
      Schema.class_decl "VNF" ~parent:"Node"
        ~fields:[ ("id", Ftype.T_int); ("name", Ftype.T_string) ];
      Schema.class_decl "VFC" ~parent:"Node" ~fields:[ ("id", Ftype.T_int) ];
      Schema.class_decl "VM" ~parent:"Node"
        ~fields:[ ("id", Ftype.T_int); ("status", Ftype.T_string) ]
        ~cardinality_hint:1000;
      Schema.class_decl "VMWare" ~parent:"VM";
      Schema.class_decl "Docker" ~parent:"Node" ~fields:[ ("id", Ftype.T_int) ];
      Schema.class_decl "Host" ~parent:"Node"
        ~fields:[ ("id", Ftype.T_int); ("name", Ftype.T_string) ];
      Schema.class_decl "Vertical" ~parent:"Edge" ~abstract:true;
      Schema.class_decl "HostedOn" ~parent:"Vertical";
      Schema.class_decl "Connects" ~parent:"Edge"
        ~fields:[ ("bandwidth", Ftype.T_int) ];
    ]

(* ---------------- parser ---------------- *)

let parse_ok s =
  match Rpe_parser.parse s with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_parse_basic () =
  let r = parse_ok "VNF()->VFC()->VM()->Host(id=23245)" in
  match Rpe.normalize r with
  | Rpe.N_seq [ _; _; _; Rpe.N_atom a ] ->
      check_string "class" "Host" a.Rpe.cls;
      check_bool "pred" true
        (Predicate.equal a.Rpe.pred
           (Predicate.Cmp ([ "id" ], Predicate.Eq, Value.Int 23245)))
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_repetition_variants () =
  (* All three notations from the paper must parse to the same RPE. *)
  let a = parse_ok "VNF()->[Vertical()]{1,6}->Host(id=1)" in
  let b = parse_ok "VNF()->Vertical(){1,6}->Host(id=1)" in
  let c = parse_ok "VNF()->[Vertical(){1,6}]->Host(id=1)" in
  check_bool "bracket = postfix" true (Rpe.equal a b);
  check_bool "inner braces" true (Rpe.equal a c);
  let d = parse_ok "VNF()->[Vertical()]{1-6}->Host(id=1)" in
  check_bool "dash bounds" true (Rpe.equal a d)

let test_parse_alternation () =
  let r = parse_ok "(VM(id=55)|Docker(id=66))->HostedOn(){1,2}->Host()" in
  match Rpe.normalize r with
  | Rpe.N_seq (Rpe.N_alt [ Rpe.N_atom a; Rpe.N_atom b ] :: _) ->
      check_string "first" "VM" a.Rpe.cls;
      check_string "second" "Docker" b.Rpe.cls
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_predicates () =
  let r = parse_ok "VM(status='Green', id>3)" in
  match r with
  | Rpe.Atom { pred; _ } ->
      check_bool "conjunction" true
        (Predicate.equal pred
           (Predicate.And
              ( Predicate.Cmp ([ "status" ], Predicate.Eq, Value.Str "Green"),
                Predicate.Cmp ([ "id" ], Predicate.Gt, Value.Int 3) )))
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_quoted_escape () =
  match parse_ok "Host(name='O''Brien')" with
  | Rpe.Atom { pred = Predicate.Cmp (_, _, Value.Str s); _ } ->
      check_string "escaped quote" "O'Brien" s
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_errors () =
  List.iter
    (fun s ->
      match Rpe_parser.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [
      "VNF(";
      "VNF()->";
      "VNF(){2,1}";
      "->VNF()";
      "VNF()->()";
      "VNF() VM()";
      "VNF(id=)";
    ]

let test_roundtrip () =
  List.iter
    (fun s ->
      let r = parse_ok s in
      let printed = Rpe.to_string r in
      let r2 = parse_ok printed in
      check_bool (s ^ " roundtrips") true (Rpe.equal r r2))
    [
      "VNF(id=55)->[Connects()]{1,5}->VM(id=66)";
      "(VM(id=55)|Docker(id=66))->HostedOn(){1,2}->Host()";
      "VM(status='Green')";
      "VNF()->[Vertical()]{0,4}";
    ]

(* ---------------- validate ---------------- *)

let test_validate () =
  let s = schema () in
  (match Rpe.validate s (parse_ok "VNF()->VFC()") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Unknown class. *)
  (match Rpe.validate s (parse_ok "Nonsense()") with
  | Ok _ -> Alcotest.fail "unknown class accepted"
  | Error _ -> ());
  (* Unknown field: atoms are strongly typed. *)
  (match Rpe.validate s (parse_ok "VM(bogus=1)") with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error _ -> ());
  (* Field of subclass not visible at superclass atom. *)
  (match Rpe.validate s (parse_ok "VNF(status='x')") with
  | Ok _ -> Alcotest.fail "subclass field accepted at parent"
  | Error _ -> ());
  (* Ill-typed literal. *)
  match Rpe.validate s (parse_ok "VM(id='abc')") with
  | Ok _ -> Alcotest.fail "ill-typed literal accepted"
  | Error _ -> ()

(* ---------------- lengths / reverse ---------------- *)

let norm s = Rpe.normalize (parse_ok s)

let test_lengths () =
  check_int "atom min" 1 (Rpe.min_length (norm "VM()"));
  check_int "seq min" 3 (Rpe.min_length (norm "VNF()->VFC()->VM()"));
  check_int "rep min 0" 0 (Rpe.min_length (norm "[Vertical()]{0,4}"));
  check_int "rep min 2" 2 (Rpe.min_length (norm "[Vertical()]{2,4}"));
  check_bool "max finite and reasonable" true
    (Rpe.max_length (norm "VNF()->[Vertical()]{1,6}->Host()") <= 17)

let test_reverse () =
  let r = norm "VNF()->VFC()->VM()" in
  match Rpe.reverse r with
  | Rpe.N_seq [ Rpe.N_atom a; _; Rpe.N_atom c ] ->
      check_string "first" "VM" a.Rpe.cls;
      check_string "last" "VNF" c.Rpe.cls
  | _ -> Alcotest.fail "unexpected reverse shape"

let test_reverse_involution () =
  List.iter
    (fun s ->
      let r = norm s in
      check_bool (s ^ " reverse . reverse = id") true
        (Rpe.equal_norm r (Rpe.reverse (Rpe.reverse r))))
    [
      "VNF(id=55)->[Connects()]{1,5}->VM(id=66)";
      "(VM()|Docker())->HostedOn(){1,2}->Host()";
      "VM()";
    ]

(* ---------------- NFA pathway matching ---------------- *)

(* Simulate the NFA over an explicit element sequence. Each element is
   (cls, fields); kinds are implied by the schema. *)
let elem cls fields = (cls, Strmap.of_list fields)

let matches_pathway s rpe_text path =
  let r =
    match Rpe.validate s (parse_ok rpe_text) with
    | Ok r -> r
    | Error e -> Alcotest.failf "validate: %s" e
  in
  let kind_of a =
    match Rpe.atom_kind s a with
    | Some Schema.Node_kind -> Some `Node
    | Some Schema.Edge_kind -> Some `Edge
    | None -> None
  in
  let nfa = Nfa.compile ~kind_of r in
  let step states (cls, fields) =
    let matches a = Rpe.atom_matches s a ~cls ~fields in
    let is_node = Schema.kind_of s cls = Some Schema.Node_kind in
    Nfa.step nfa ~matches ~is_node states
  in
  let final = List.fold_left step (Nfa.start nfa) path in
  Nfa.accepting nfa final

let v i = Value.Int i

let test_nfa_simple_chain () =
  let s = schema () in
  let path =
    [
      elem "VNF" [ ("id", v 1) ];
      elem "HostedOn" [];
      elem "VFC" [ ("id", v 2) ];
      elem "HostedOn" [];
      elem "VM" [ ("id", v 3) ];
      elem "HostedOn" [];
      elem "Host" [ ("id", v 23245) ];
    ]
  in
  (* Node-only RPE: edges are skipped at junctions. *)
  check_bool "node chain matches" true
    (matches_pathway s "VNF()->VFC()->VM()->Host(id=23245)" path);
  (* Wrong anchor id must fail. *)
  check_bool "wrong id fails" false
    (matches_pathway s "VNF()->VFC()->VM()->Host(id=999)" path);
  (* Mixed node and edge atoms. *)
  check_bool "mixed atoms" true
    (matches_pathway s "VNF()->HostedOn()->VFC()->VM()->Host()" path);
  (* Generic Vertical repetition covers the whole chain. *)
  check_bool "vertical repetition" true
    (matches_pathway s "VNF()->[Vertical()]{1,6}->Host(id=23245)" path);
  (* Too-tight repetition bound fails: needs 3 vertical edges. *)
  check_bool "tight bound fails" false
    (matches_pathway s "VNF()->[Vertical()]{1,2}->Host(id=23245)" path)

let test_nfa_edge_only_rpe () =
  let s = schema () in
  (* A single edge atom matches node,edge,node (implicit endpoints). *)
  let path = [ elem "Host" [ ("id", v 1) ]; elem "Connects" []; elem "Host" [ ("id", v 2) ] ] in
  check_bool "single edge atom" true (matches_pathway s "Connects()" path);
  (* Edge repetition: n,e,n,e,n. *)
  let path2 =
    [
      elem "Host" [ ("id", v 1) ];
      elem "Connects" [];
      elem "Host" [ ("id", v 2) ];
      elem "Connects" [];
      elem "Host" [ ("id", v 3) ];
    ]
  in
  check_bool "edge repetition 2" true (matches_pathway s "[Connects()]{1,4}" path2);
  check_bool "exact count required" false (matches_pathway s "[Connects()]{3,4}" path2);
  (* Anchored at both ends. *)
  check_bool "anchored both ends" true
    (matches_pathway s "Host(id=1)->[Connects()]{1,4}->Host(id=3)" path2)

let test_nfa_no_double_skip () =
  let s = schema () in
  (* VNF()->VM(): junction may skip ONE element; a VNF-e-VFC-e-VM path
     needs two skipped elements plus an unmatched node — must fail. *)
  let path =
    [
      elem "VNF" [ ("id", v 1) ];
      elem "HostedOn" [];
      elem "VFC" [ ("id", v 2) ];
      elem "HostedOn" [];
      elem "VM" [ ("id", v 3) ];
    ]
  in
  check_bool "no multi-element gap" false (matches_pathway s "VNF()->VM()" path)

let test_nfa_alternation () =
  let s = schema () in
  let path_vm =
    [ elem "VMWare" [ ("id", v 55) ]; elem "HostedOn" []; elem "Host" [] ]
  in
  let path_docker =
    [ elem "Docker" [ ("id", v 66) ]; elem "HostedOn" []; elem "Host" [] ]
  in
  let rpe = "(VM(id=55)|Docker(id=66))->HostedOn(){1,2}->Host()" in
  (* VMWare matches the VM atom through subclassing. *)
  check_bool "vm branch (subclass)" true (matches_pathway s rpe path_vm);
  check_bool "docker branch" true (matches_pathway s rpe path_docker);
  let path_wrong = [ elem "Docker" [ ("id", v 99) ]; elem "HostedOn" []; elem "Host" [] ] in
  check_bool "wrong id" false (matches_pathway s rpe path_wrong)

let test_nfa_concept_generalization () =
  let s = schema () in
  (* The atom VM() must match VMWare but not Docker. *)
  check_bool "subclass matches" true
    (matches_pathway s "VM()" [ elem "VMWare" [ ("id", v 1) ] ]);
  check_bool "sibling does not" false
    (matches_pathway s "VM()" [ elem "Docker" [ ("id", v 1) ] ]);
  (* Abstract edge concept matches its concrete subclass. *)
  check_bool "abstract edge concept" true
    (matches_pathway s "Vertical()"
       [ elem "VFC" []; elem "HostedOn" []; elem "VM" [] ])

let test_nfa_empty_rep () =
  let s = schema () in
  (* {0,2}: zero repetitions allowed — VNF directly followed by Host
     with one junction-skippable edge. *)
  let direct = [ elem "VNF" []; elem "HostedOn" []; elem "Host" [] ] in
  check_bool "zero reps via junction skip" true
    (matches_pathway s "VNF()->[VM()]{0,2}->Host()" direct)

(* ---------------- anchors ---------------- *)

let default_cost (a : Rpe.atom) =
  (* id-equality is very selective; otherwise class hint or big default. *)
  if Predicate.equality_lookups a.Rpe.pred <> [] then 1.0
  else
    match Schema.cardinality_hint (schema ()) a.Rpe.cls with
    | Some h -> float_of_int h
    | None -> 100_000.

let test_anchor_picks_selective_atom () =
  let r = norm "VNF()->[Vertical()]{1,6}->Host(id=23245)" in
  match Anchor.select ~cost:default_cost r with
  | Error e -> Alcotest.fail e
  | Ok sel -> (
      match sel.Anchor.splits with
      | [ sp ] ->
          check_string "anchor is the id-equality atom" "Host" sp.Anchor.anchor.Rpe.cls;
          check_bool "prefix present" true (sp.Anchor.before <> None);
          check_bool "no suffix" true (sp.Anchor.after = None)
      | _ -> Alcotest.fail "expected a single split")

let test_anchor_alternation_union () =
  let r = norm "(VM(id=55)|Docker(id=66))->HostedOn(){1,2}->Host()" in
  match Anchor.select ~cost:default_cost r with
  | Error e -> Alcotest.fail e
  | Ok sel ->
      check_int "two splits (one per branch)" 2 (List.length sel.Anchor.splits);
      let classes =
        List.map (fun sp -> sp.Anchor.anchor.Rpe.cls) sel.Anchor.splits
        |> List.sort String.compare
      in
      check_bool "both branch atoms" true (classes = [ "Docker"; "VM" ])

let test_anchor_rejects_unanchorable () =
  (* The paper's example: [VNF()]{0,4}->[Vertical()]{0,4} has no anchor
     because the empty path satisfies it. *)
  let r = norm "[VNF()]{0,4}->[Vertical()]{0,4}" in
  match Anchor.select ~cost:default_cost r with
  | Ok _ -> Alcotest.fail "unanchorable RPE accepted"
  | Error _ -> ()

let test_anchor_repetition_unroll () =
  (* Anchor inside a {2,3} repetition comes from the first unrolled
     copy; the remainder {1,2} moves to the suffix. *)
  let r = norm "[Connects(bandwidth=100)]{2,3}" in
  match Anchor.select ~cost:default_cost r with
  | Error e -> Alcotest.fail e
  | Ok sel -> (
      match sel.Anchor.splits with
      | [ { Anchor.before = None; after = Some (Rpe.N_rep (_, 1, 2)); _ } ] -> ()
      | [ sp ] -> Alcotest.failf "unexpected split %s" (Anchor.split_to_string sp)
      | _ -> Alcotest.fail "expected single split")

let test_anchor_middle_split () =
  let r = norm "VNF()->VM(id=5)->Host()" in
  match Anchor.select ~cost:default_cost r with
  | Error e -> Alcotest.fail e
  | Ok sel -> (
      match sel.Anchor.splits with
      | [ sp ] ->
          check_string "middle anchor" "VM" sp.Anchor.anchor.Rpe.cls;
          check_bool "has prefix" true (sp.Anchor.before <> None);
          check_bool "has suffix" true (sp.Anchor.after <> None)
      | _ -> Alcotest.fail "expected single split")

(* ---------------- properties ---------------- *)

(* Random RPE generator over the test schema. *)
let arb_rpe =
  let atom_gen =
    QCheck.Gen.oneofl
      [
        "VNF()"; "VFC()"; "VM()"; "Host()"; "Vertical()"; "HostedOn()";
        "Connects()"; "VM(id=5)"; "Host(id=1)";
      ]
  in
  let rec gen depth =
    let open QCheck.Gen in
    if depth = 0 then atom_gen
    else
      frequency
        [
          (3, atom_gen);
          (2, map2 (fun a b -> a ^ "->" ^ b) (gen (depth - 1)) (gen (depth - 1)));
          (1, map2 (fun a b -> "(" ^ a ^ "|" ^ b ^ ")") (gen (depth - 1)) (gen (depth - 1)));
          ( 1,
            map2
              (fun r (i, j) -> Printf.sprintf "[%s]{%d,%d}" r i j)
              (gen (depth - 1))
              (map2 (fun i j -> (i, 1 + i + j)) (int_bound 1) (int_bound 2)) );
        ]
  in
  QCheck.make (gen 3) ~print:Fun.id

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"rpe parse/print roundtrip" ~count:300 arb_rpe
    (fun text ->
      match Rpe_parser.parse text with
      | Error _ -> QCheck.assume_fail ()
      | Ok r -> (
          match Rpe_parser.parse (Rpe.to_string r) with
          | Error _ -> false
          | Ok r2 -> Rpe.equal r r2))

let prop_min_le_max =
  QCheck.Test.make ~name:"min_length <= max_length" ~count:300 arb_rpe
    (fun text ->
      match Rpe_parser.parse text with
      | Error _ -> QCheck.assume_fail ()
      | Ok r ->
          let n = Rpe.normalize r in
          Rpe.min_length n <= Rpe.max_length n)

let prop_reverse_preserves_lengths =
  QCheck.Test.make ~name:"reverse preserves min/max lengths" ~count:300 arb_rpe
    (fun text ->
      match Rpe_parser.parse text with
      | Error _ -> QCheck.assume_fail ()
      | Ok r ->
          let n = Rpe.normalize r in
          let rv = Rpe.reverse n in
          Rpe.min_length n = Rpe.min_length rv
          && Rpe.max_length n = Rpe.max_length rv)

let prop_anchor_cost_is_min =
  QCheck.Test.make ~name:"select returns the cheapest candidate" ~count:300
    arb_rpe (fun text ->
      match Rpe_parser.parse text with
      | Error _ -> QCheck.assume_fail ()
      | Ok r -> (
          let n = Rpe.normalize r in
          let cands = Anchor.enumerate ~cost:default_cost n in
          match Anchor.select ~cost:default_cost n with
          | Error _ -> cands = []
          | Ok sel ->
              cands <> []
              && List.for_all (fun c -> sel.Anchor.cost <= c.Anchor.cost) cands))

let () =
  Alcotest.run "nepal_rpe"
    [
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "repetition variants" `Quick test_parse_repetition_variants;
          Alcotest.test_case "alternation" `Quick test_parse_alternation;
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
          Alcotest.test_case "quote escape" `Quick test_parse_quoted_escape;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ("validate", [ Alcotest.test_case "strong typing" `Quick test_validate ]);
      ( "structure",
        [
          Alcotest.test_case "lengths" `Quick test_lengths;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "reverse involution" `Quick test_reverse_involution;
        ] );
      ( "nfa",
        [
          Alcotest.test_case "simple chain" `Quick test_nfa_simple_chain;
          Alcotest.test_case "edge-only rpe" `Quick test_nfa_edge_only_rpe;
          Alcotest.test_case "no double skip" `Quick test_nfa_no_double_skip;
          Alcotest.test_case "alternation" `Quick test_nfa_alternation;
          Alcotest.test_case "concept generalization" `Quick test_nfa_concept_generalization;
          Alcotest.test_case "zero repetition" `Quick test_nfa_empty_rep;
        ] );
      ( "anchor",
        [
          Alcotest.test_case "selective atom" `Quick test_anchor_picks_selective_atom;
          Alcotest.test_case "alternation union" `Quick test_anchor_alternation_union;
          Alcotest.test_case "unanchorable rejected" `Quick test_anchor_rejects_unanchorable;
          Alcotest.test_case "repetition unroll" `Quick test_anchor_repetition_unroll;
          Alcotest.test_case "middle split" `Quick test_anchor_middle_split;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_parse_print_roundtrip;
            prop_min_le_max;
            prop_reverse_preserves_lengths;
            prop_anchor_cost_is_min;
          ] );
    ]

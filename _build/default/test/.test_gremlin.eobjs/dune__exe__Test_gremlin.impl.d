test/test_gremlin.ml: Alcotest Int List Nepal_gremlin Nepal_schema Nepal_temporal Nepal_util Pgraph String Traversal

test/test_gremlin.mli:

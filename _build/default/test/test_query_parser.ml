(* The query-language parser: every syntactic form that appears in the
   paper, plus printing roundtrips and error cases. *)

module Qp = Nepal_query.Query_parser
module Ast = Nepal_query.Query_ast
module Value = Nepal_schema.Value
module Predicate = Nepal_rpe.Predicate
module Rpe = Nepal_rpe.Rpe

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse_ok s =
  match Qp.parse s with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

(* ------------- shapes ------------- *)

let test_retrieve_basic () =
  let q = parse_ok "Retrieve P From PATHS P Where P MATCHES VM()" in
  (match q.Ast.mode with
  | Ast.Retrieve [ "P" ] -> ()
  | _ -> Alcotest.fail "mode");
  check_int "one var" 1 (List.length q.Ast.vars);
  match q.Ast.where_ with
  | Ast.Matches ("P", Rpe.Atom { cls = "VM"; _ }) -> ()
  | _ -> Alcotest.fail "where"

let test_keywords_case_insensitive () =
  let q =
    parse_ok "retrieve P from paths P WHERE P matches VM() AND length(P) >= 0"
  in
  check_int "conjuncts" 2 (List.length (Ast.conjuncts q.Ast.where_))

let test_multi_var_join () =
  let q =
    parse_ok
      "Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys \
       Where D1 MATCHES VNF(id=123)->Vertical(){1,6}->Host() \
       And D2 MATCHES VNF(id=234)->Vertical(){1,6}->Host() \
       And Phys MATCHES ConnectsTo(){1,8} \
       And source(Phys)=target(D1) \
       And target(Phys)=target(D2)"
  in
  check_int "three vars" 3 (List.length q.Ast.vars);
  let conjs = Ast.conjuncts q.Ast.where_ in
  check_int "five conjuncts" 5 (List.length conjs);
  let joins =
    List.filter
      (function
        | Ast.Cmp (Ast.Node_of _, Predicate.Eq, Ast.Node_of _) -> true
        | _ -> false)
      conjs
  in
  check_int "two join equalities" 2 (List.length joins)

let test_select_items () =
  let q =
    parse_ok
      "Select source(V).name, source(V).id, length(V) AS hops \
       From PATHS V Where V MATCHES VM()"
  in
  match q.Ast.mode with
  | Ast.Select [ a; b; c ] ->
      (match a.Ast.item with
      | Ast.Field_of (Ast.Source, "V", [ "name" ]) -> ()
      | _ -> Alcotest.fail "item a");
      (match b.Ast.item with
      | Ast.Field_of (Ast.Source, "V", [ "id" ]) -> ()
      | _ -> Alcotest.fail "item b");
      (match (c.Ast.item, c.Ast.alias) with
      | Ast.Length_of "V", Some "hops" -> ()
      | _ -> Alcotest.fail "item c")
  | _ -> Alcotest.fail "mode"

let test_query_level_at () =
  let q =
    parse_ok
      "AT '2017-02-15 10:00:00' Select source(P) From PATHS P \
       Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)"
  in
  match q.Ast.q_at with
  | Some (Ast.At_point t) ->
      check_string "timestamp" "2017-02-15 10:00:00"
        (Nepal_temporal.Time_point.to_string t)
  | _ -> Alcotest.fail "expected AT point"

let test_query_level_range () =
  let q =
    parse_ok
      "AT '2017-02-15 09:00' : '2017-02-15 11:00' Select source(P) \
       From PATHS P Where P MATCHES VNF()"
  in
  match q.Ast.q_at with
  | Some (Ast.At_range (_, _)) -> ()
  | _ -> Alcotest.fail "expected AT range"

let test_per_variable_at () =
  (* The paper's exact syntax, including the omitted PATHS keyword on
     the second variable. *)
  let q =
    parse_ok
      "Select source(P) From PATHS P(@'2017-02-15 10:00'), Q(@'2017-02-15 11:00') \
       Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245) \
       And Q MATCHES VNF()->[HostedOn()]{1,6}->Host(id=34356) \
       And source(P) = source(Q)"
  in
  check_int "two vars" 2 (List.length q.Ast.vars);
  List.iter
    (fun v ->
      match v.Ast.var_tc with
      | Some (Ast.At_point _) -> ()
      | _ -> Alcotest.fail "per-var timestamp missing")
    q.Ast.vars

let test_not_exists_subquery () =
  let q =
    parse_ok
      "Retrieve V From PATHS V Where V MATCHES VM() \
       And NOT EXISTS( Retrieve P from PATHS P \
         Where P MATCHES (VNF()|VFC())->[HostedOn(){1,5}]->VM() \
         And target(V) = target(P) )"
  in
  let conjs = Ast.conjuncts q.Ast.where_ in
  match List.nth conjs 1 with
  | Ast.Not_exists sub ->
      check_int "subquery has one var" 1 (List.length sub.Ast.vars)
  | _ -> Alcotest.fail "expected NOT EXISTS"

let test_or_and_not () =
  let q =
    parse_ok
      "Retrieve P From PATHS P Where P MATCHES VM() \
       And (source(P).id = 1 Or source(P).id = 2) \
       And Not source(P).status = 'Red'"
  in
  check_int "three conjuncts" 3 (List.length (Ast.conjuncts q.Ast.where_))

let test_negative_literals () =
  let q =
    parse_ok "Retrieve P From PATHS P Where P MATCHES VM() And length(P) > -1"
  in
  match List.nth (Ast.conjuncts q.Ast.where_) 1 with
  | Ast.Cmp (_, Predicate.Gt, Ast.Lit (Value.Int (-1))) -> ()
  | _ -> Alcotest.fail "negative literal"

(* ------------- printing roundtrip ------------- *)

let test_print_roundtrip () =
  List.iter
    (fun text ->
      let q1 = parse_ok text in
      let printed = Ast.to_string q1 in
      let q2 = parse_ok printed in
      check_string (text ^ " roundtrips") (Ast.to_string q2) printed)
    [
      "Retrieve P From PATHS P Where P MATCHES VM(status='Green')";
      "Select source(P).id From PATHS P Where P MATCHES VNF()->VFC()";
      "AT '2017-02-15 10:00:00' Retrieve P From PATHS P Where P MATCHES VM()";
      "Retrieve P, Q From PATHS P, PATHS Q Where P MATCHES VM() And Q MATCHES VFC() \
       And source(P) = source(Q)";
      "Retrieve V From PATHS V Where V MATCHES VM() And NOT EXISTS( \
       Retrieve P From PATHS P Where P MATCHES VFC() And target(V) = target(P) )";
      "Select source(P).name, count(P) From PATHS P Where P MATCHES VM()";
      "Select min(length(P)) AS lo, max(length(P)) From PATHS P Where P MATCHES VM()";
    ]

(* ------------- errors ------------- *)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Qp.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [
      "";
      "Retrieve";
      "Retrieve P Where P MATCHES VM()";
      "Retrieve P From PATHS P";
      "Select From PATHS P Where P MATCHES VM()";
      "Retrieve P From PATHS P Where MATCHES VM()";
      "Retrieve P From PATHS P Where P MATCHES";
      "AT 'not a timestamp' Retrieve P From PATHS P Where P MATCHES VM()";
      "AT '2017-02-15 11:00' : '2017-02-15 10:00' Retrieve P From PATHS P Where P MATCHES VM()";
      "Retrieve P From PATHS P Where P MATCHES VM() trailing";
      "Retrieve P From PATHS P(@'oops') Where P MATCHES VM()";
    ]

let () =
  Alcotest.run "nepal_query_parser"
    [
      ( "shapes",
        [
          Alcotest.test_case "retrieve basic" `Quick test_retrieve_basic;
          Alcotest.test_case "case-insensitive keywords" `Quick test_keywords_case_insensitive;
          Alcotest.test_case "multi-var join" `Quick test_multi_var_join;
          Alcotest.test_case "select items" `Quick test_select_items;
          Alcotest.test_case "query-level AT" `Quick test_query_level_at;
          Alcotest.test_case "query-level range" `Quick test_query_level_range;
          Alcotest.test_case "per-variable @" `Quick test_per_variable_at;
          Alcotest.test_case "NOT EXISTS" `Quick test_not_exists_subquery;
          Alcotest.test_case "Or/And/Not" `Quick test_or_and_not;
          Alcotest.test_case "negative literals" `Quick test_negative_literals;
        ] );
      ("roundtrip", [ Alcotest.test_case "print-parse" `Quick test_print_roundtrip ]);
      ("errors", [ Alcotest.test_case "malformed rejected" `Quick test_parse_errors ]);
    ]

test/test_store.ml: Alcotest Ftype Interval Interval_set List Nepal_schema Nepal_store Nepal_temporal Nepal_util QCheck QCheck_alcotest Schema Time_constraint Time_point Value

test/test_rpe.mli:

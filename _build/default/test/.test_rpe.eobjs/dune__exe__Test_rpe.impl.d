test/test_rpe.ml: Alcotest Anchor Ftype Fun List Nepal_rpe Nepal_schema Nepal_util Nfa Predicate Printf QCheck QCheck_alcotest Rpe Rpe_parser Schema String Value

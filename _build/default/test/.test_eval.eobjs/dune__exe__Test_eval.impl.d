test/test_eval.ml: Alcotest Core Ftype Interval_set List Nepal_query Nepal_rpe Nepal_schema Nepal_store Nepal_temporal Nepal_util Option QCheck QCheck_alcotest Schema Time_constraint Time_point Value

(* End-to-end tests through the public facade, exercising the paper's
   Section 3.4 and Section 4 example queries verbatim (modulo ids). *)

module Nepal = Core.Nepal

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tp = Nepal.Time_point.of_string_exn

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

(* The Figure 3 schema in TOSCA text, parsed by the loader. *)
let tosca_model =
  {|
node_types:
  VNF:
    properties:
      id: int
      name: string
  VFC:
    properties:
      id: int
  VM:
    properties:
      id: int
      status: string
  Host:
    properties:
      id: int
      name: string
edge_types:
  Vertical:
    abstract: true
  HostedOn:
    derived_from: Vertical
  Connects:
    properties:
      bandwidth: int
|}

let t0 = tp "2017-02-01 00:00:00"
let t1 = tp "2017-02-15 09:00:00"
let t2 = tp "2017-02-15 10:30:00"

let fields l = Nepal.Strmap.of_list l
let i n = Nepal.Value.Int n

let build () =
  let db = Nepal.create (Nepal.Tosca.parse_exn tosca_model) in
  let node cls fs = ok (Nepal.insert_node db ~at:t0 ~cls ~fields:(fields fs)) in
  let edge cls src dst =
    ok (Nepal.insert_edge db ~at:t0 ~cls ~src ~dst ~fields:Nepal.Strmap.empty)
  in
  let vnf1 = node "VNF" [ ("id", i 123); ("name", Nepal.Value.Str "epc") ] in
  let vnf2 = node "VNF" [ ("id", i 234); ("name", Nepal.Value.Str "dns") ] in
  let vfc1 = node "VFC" [ ("id", i 11) ] in
  let vfc2 = node "VFC" [ ("id", i 12) ] in
  let vm1 = node "VM" [ ("id", i 21); ("status", Nepal.Value.Str "Green") ] in
  let vm2 = node "VM" [ ("id", i 22); ("status", Nepal.Value.Str "Green") ] in
  let vm_spare = node "VM" [ ("id", i 23); ("status", Nepal.Value.Str "Red") ] in
  let host1 = node "Host" [ ("id", i 23245) ] in
  let host2 = node "Host" [ ("id", i 34356) ] in
  ignore vm_spare;
  ignore (edge "HostedOn" vnf1 vfc1);
  ignore (edge "HostedOn" vnf2 vfc2);
  ignore (edge "HostedOn" vfc1 vm1);
  ignore (edge "HostedOn" vfc2 vm2);
  ignore (edge "HostedOn" vm1 host1);
  ignore (edge "HostedOn" vm2 host1);
  ignore (edge "Connects" host1 host2);
  ignore (edge "Connects" host2 host1);
  (db, vnf1, vm1, host1, host2)

let rows = function
  | Nepal.Engine.Rows { rows; _ } -> rows
  | Nepal.Engine.Table _ -> Alcotest.fail "expected pathway rows"

let table = function
  | Nepal.Engine.Table { rows; _ } -> rows
  | Nepal.Engine.Rows _ -> Alcotest.fail "expected a table"

(* -- the paper's first example ---------------------------------------- *)

let test_affected_vnfs () =
  let db, _, _, _, _ = build () in
  let res =
    ok
      (Nepal.query db
         "Retrieve P From PATHS P WHERE P MATCHES \
          VNF()->VFC()->VM()->Host(id=23245)")
  in
  check_int "both VNFs affected" 2 (List.length (rows res))

let test_generic_vertical_query () =
  let db, _, _, _, _ = build () in
  let res =
    ok
      (Nepal.query db
         "Retrieve P From PATHS P WHERE P MATCHES \
          VNF()->[Vertical()]{1,6}->Host(id=23245)")
  in
  check_int "generic form agrees" 2 (List.length (rows res))

(* -- the paper's join example (physical path between two VNFs) -------- *)

let test_join_physical_path () =
  let db, _, _, _, _ = build () in
  let res =
    ok
      (Nepal.query db
         "Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys \
          Where D1 MATCHES VNF(id=123)->[Vertical()]{1,6}->Host() \
          And D2 MATCHES VNF(id=234)->[Vertical()]{1,6}->Host() \
          And Phys MATCHES [Connects()]{1,8} \
          And source(Phys) = target(D1) \
          And target(Phys) = target(D2)")
  in
  (* Both VNFs land on host1, so Phys must connect host1 to host1 —
     no cycle-free physical path exists. *)
  check_int "no self path" 0 (List.length (rows res));
  let res2 =
    ok
      (Nepal.query db
         "Retrieve Phys From PATHS D1, PATHS Phys \
          Where D1 MATCHES VNF(id=123)->[Vertical()]{1,6}->Host() \
          And Phys MATCHES [Connects()]{1,8} \
          And source(Phys) = target(D1)")
  in
  check_int "paths out of host1" 1 (List.length (rows res2))

(* -- the paper's NOT EXISTS example ----------------------------------- *)

let test_idle_vms_subquery () =
  let db, _, _, _, _ = build () in
  let res =
    ok
      (Nepal.query db
         "Retrieve V From PATHS V \
          Where V MATCHES VM() \
          And NOT EXISTS( \
            Retrieve P from PATHS P \
            Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM() \
            And target(V) = target(P) )")
  in
  (* Only the spare VM hosts nothing. *)
  check_int "one idle VM" 1 (List.length (rows res));
  let r = List.hd (rows res) in
  let p = Nepal.Strmap.find "V" r.Nepal.Engine.paths in
  check_bool "it is vm 23" true
    (Nepal.Value.equal (Nepal.Path.field (Nepal.Path.source p) "id") (i 23))

(* -- the Select result-processing layer -------------------------------- *)

let test_select_projection () =
  let db, _, _, _, _ = build () in
  let res =
    ok
      (Nepal.query db
         "Select source(V).status, source(V).id From PATHS V \
          Where V MATCHES VM(status='Green')")
  in
  let trs = table res in
  check_int "two green VMs" 2 (List.length trs);
  List.iter
    (fun row ->
      match row with
      | [ status; _id ] ->
          check_bool "green" true
            (Nepal.Value.equal status (Nepal.Value.Str "Green"))
      | _ -> Alcotest.fail "bad arity")
    trs

let test_select_distinct () =
  let db, _, _, _, _ = build () in
  (* Both VNF pathways end at host 23245: Select target must dedup. *)
  let res =
    ok
      (Nepal.query db
         "Select target(P).id From PATHS P \
          Where P MATCHES VNF()->[Vertical()]{1,6}->Host()")
  in
  check_int "set semantics" 1 (List.length (table res))

(* -- temporal queries (Section 4) -------------------------------------- *)

let temporal_db () =
  let db, _, vm1, host1, host2 = build () in
  (* At t1, vm1 migrates from host1 to host2. *)
  let store = Nepal.store db in
  let old_edge =
    List.find
      (fun (e : Nepal.Entity.t) -> Nepal.Entity.dst e = host1)
      (Nepal.Graph_store.out_edges store ~tc:Nepal.Time_constraint.Snapshot vm1)
  in
  ok (Nepal.delete db ~at:t1 old_edge.Nepal.Entity.uid);
  ignore
    (ok
       (Nepal.insert_edge db ~at:t1 ~cls:"HostedOn" ~src:vm1 ~dst:host2
          ~fields:Nepal.Strmap.empty));
  db

let test_at_point_query () =
  let db = temporal_db () in
  let res =
    ok
      (Nepal.query db
         "AT '2017-02-01 12:00:00' \
          Select source(P) From PATHS P \
          Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)")
  in
  check_int "both VNFs before migration" 2 (List.length (table res));
  let res2 =
    ok
      (Nepal.query db
         "Select source(P) From PATHS P \
          Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)")
  in
  check_int "one VNF now" 1 (List.length (table res2))

let test_per_variable_timestamps () =
  let db = temporal_db () in
  (* The paper's two-slice join: same VNF on host 23245 at one time and
     host 34356 at another. *)
  let res =
    ok
      (Nepal.query db
         "Select source(P) From PATHS P(@'2017-02-01 12:00'), Q(@'2017-02-15 11:00') \
          Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245) \
          And Q MATCHES VNF()->[HostedOn()]{1,6}->Host(id=34356) \
          And source(P) = source(Q)")
  in
  check_int "the migrated VNF" 1 (List.length (table res))

let test_time_range_query () =
  let db = temporal_db () in
  let res =
    ok
      (Nepal.query db
         "AT '2017-02-01 00:00' : '2017-02-28 00:00' \
          Retrieve P From PATHS P \
          Where P MATCHES VNF(id=123)->[HostedOn()]{1,6}->Host(id=23245)")
  in
  check_int "found within range" 1 (List.length (rows res));
  let r = List.hd (rows res) in
  let p = Nepal.Strmap.find "P" r.Nepal.Engine.paths in
  match p.Nepal.Path.valid with
  | Some v -> (
      match Nepal.Interval_set.last_moment v with
      | `Ended e ->
          check_bool "pathway ended at the migration" true
            (Nepal.Time_point.equal e t1)
      | _ -> Alcotest.fail "expected ended")
  | None -> Alcotest.fail "range query must attach validity"

let test_coexistence_semantics () =
  let db = temporal_db () in
  (* Under a query-level AT range, all variables must coexist: the
     pre-migration pathway and the post-migration pathway of vm1 never
     coexist. *)
  let res =
    ok
      (Nepal.query db
         "AT '2017-02-01 00:00' : '2017-02-28 00:00' \
          Retrieve P, Q From PATHS P, PATHS Q \
          Where P MATCHES VM(id=21)->[HostedOn()]{1,2}->Host(id=23245) \
          And Q MATCHES VM(id=21)->[HostedOn()]{1,2}->Host(id=34356) \
          And source(P) = source(Q)")
  in
  check_int "never coexist" 0 (List.length (rows res))

let test_temporal_aggregations () =
  let db = temporal_db () in
  let window = (t0, tp "2017-02-28 00:00:00") in
  let norm =
    ok
      (Nepal.Rpe.validate (Nepal.schema db)
         (Nepal.Rpe_parser.parse_exn "VM(id=21)->[HostedOn()]{1,2}->Host(id=23245)"))
  in
  let conn = Nepal.conn db in
  (match ok (Nepal.Temporal_agg.first_time_when_exists conn ~window norm) with
  | Some first ->
      check_bool "first = load time" true (Nepal.Time_point.equal first t0)
  | None -> Alcotest.fail "expected first time");
  (match ok (Nepal.Temporal_agg.last_time_when_exists conn ~window norm) with
  | `Ended e -> check_bool "ends at migration" true (Nepal.Time_point.equal e t1)
  | _ -> Alcotest.fail "expected ended");
  let norm2 =
    ok
      (Nepal.Rpe.validate (Nepal.schema db)
         (Nepal.Rpe_parser.parse_exn "VM(id=21)->[HostedOn()]{1,2}->Host(id=34356)"))
  in
  match ok (Nepal.Temporal_agg.last_time_when_exists conn ~window norm2) with
  | `Still_exists -> ()
  | _ -> Alcotest.fail "post-migration pathway should still exist"

let test_path_evolution () =
  let db = temporal_db () in
  let store = Nepal.store db in
  let vm_uid =
    (List.hd
       (Nepal.Graph_store.lookup store ~tc:Nepal.Time_constraint.Snapshot ~cls:"VM"
          ~field:"id" (i 21))).Nepal.Entity.uid
  in
  ok (Nepal.update db ~at:t2 vm_uid ~fields:(fields [ ("status", Nepal.Value.Str "Red") ]));
  let steps =
    Nepal.Temporal_agg.path_evolution (Nepal.conn db)
      ~window:(tp "2017-02-01 00:00:01", tp "2017-02-28 00:00")
      [ vm_uid ]
  in
  check_bool "records the change" true
    (List.exists
       (fun (s : Nepal.Temporal_agg.evolution_step) ->
         s.change = `Changed && Nepal.Time_point.equal s.at t2)
       steps)

(* -- parser errors surface cleanly ------------------------------------- *)

let test_query_errors () =
  let db, _, _, _, _ = build () in
  List.iter
    (fun q ->
      match Nepal.query db q with
      | Ok _ -> Alcotest.failf "accepted bad query %S" q
      | Error _ -> ())
    [
      "Retrieve P From PATHS P";
      "Retrieve P From PATHS P Where Q MATCHES VM()";
      "Retrieve P From PATHS P Where P MATCHES Bogus()";
      "Retrieve P From PATHS P Where P MATCHES VM(nofield=1)";
      "Retrieve P From PATHS P, PATHS P Where P MATCHES VM()";
      "Retrieve P From PATHS P Where P MATCHES VM() And P MATCHES VFC()";
      "Retrieve Q From PATHS P Where P MATCHES VM()";
    ]

let () =
  Alcotest.run "nepal_facade"
    [
      ( "paper_examples",
        [
          Alcotest.test_case "affected VNFs (ex. 1)" `Quick test_affected_vnfs;
          Alcotest.test_case "generic Vertical (ex. 2)" `Quick test_generic_vertical_query;
          Alcotest.test_case "physical-path join (ex. 3)" `Quick test_join_physical_path;
          Alcotest.test_case "NOT EXISTS (ex. 4)" `Quick test_idle_vms_subquery;
          Alcotest.test_case "Select projection" `Quick test_select_projection;
          Alcotest.test_case "Select distinct" `Quick test_select_distinct;
        ] );
      ( "temporal",
        [
          Alcotest.test_case "AT point" `Quick test_at_point_query;
          Alcotest.test_case "per-variable slices" `Quick test_per_variable_timestamps;
          Alcotest.test_case "time range" `Quick test_time_range_query;
          Alcotest.test_case "coexistence" `Quick test_coexistence_semantics;
          Alcotest.test_case "aggregations" `Quick test_temporal_aggregations;
          Alcotest.test_case "path evolution" `Quick test_path_evolution;
        ] );
      ("errors", [ Alcotest.test_case "bad queries rejected" `Quick test_query_errors ]);
    ]

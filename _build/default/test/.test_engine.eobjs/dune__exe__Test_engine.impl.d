test/test_engine.ml: Alcotest Core List String

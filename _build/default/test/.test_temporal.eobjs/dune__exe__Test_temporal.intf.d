test/test_temporal.mli:

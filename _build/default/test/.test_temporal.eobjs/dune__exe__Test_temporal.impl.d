test/test_temporal.ml: Alcotest Array Fun Interval Interval_set List Nepal_temporal Nepal_util QCheck QCheck_alcotest Time_constraint Time_point

(* The property-graph substrate: label-prefix concept matching,
   traversal steps, channels, Gremlin text rendering — and the
   schema-free "loads garbage silently" behaviour the paper contrasts
   Nepal against (Section 6.1). *)

open Nepal_gremlin
module Value = Nepal_schema.Value
module Strmap = Nepal_util.Strmap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let props l = Strmap.of_list l
let i n = Value.Int n
let s x = Value.Str x

let small_graph () =
  let g = Pgraph.create () in
  let vnf = Pgraph.add_vertex g ~label:"Node:VNF:VNF_DNS" (props [ ("id", i 1) ]) in
  let vfc = Pgraph.add_vertex g ~label:"Node:VFC" (props [ ("id", i 2) ]) in
  let vm = Pgraph.add_vertex g ~label:"Node:Container:VM:VMWare"
      (props [ ("id", i 3); ("status", s "Green") ])
  in
  let host = Pgraph.add_vertex g ~label:"Node:Host" (props [ ("id", i 4) ]) in
  let e1 = Pgraph.add_edge g ~label:"Edge:Vertical:ComposedOf" ~src:vnf ~dst:vfc (props []) in
  let e2 = Pgraph.add_edge g ~label:"Edge:Vertical:HostedOn:OnVM" ~src:vfc ~dst:vm (props []) in
  let e3 = Pgraph.add_edge g ~label:"Edge:Vertical:HostedOn:OnServer" ~src:vm ~dst:host (props []) in
  (g, vnf, vfc, vm, host, e1, e2, e3)

(* ---------------- pgraph ---------------- *)

let test_label_prefix_matching () =
  let g, _, _, _, _, _, _, _ = small_graph () in
  check_int "all nodes" 4 (List.length (Pgraph.vertices_by_label_prefix g "Node"));
  check_int "containers" 1 (List.length (Pgraph.vertices_by_label_prefix g "Node:Container"));
  check_int "VM concept" 1 (List.length (Pgraph.vertices_by_label_prefix g "Node:Container:VM"));
  (* Segment-aware: "Node:V" must not match "Node:VNF...". *)
  check_int "partial segment no match" 0
    (List.length (Pgraph.vertices_by_label_prefix g "Node:V"));
  check_int "vertical edges" 3 (List.length (Pgraph.edges_by_label_prefix g "Edge:Vertical"));
  check_int "hosted_on edges" 2
    (List.length (Pgraph.edges_by_label_prefix g "Edge:Vertical:HostedOn"))

let test_adjacency_and_removal () =
  let g, _vnf, vfc, vm, _, _, e2, _ = small_graph () in
  check_int "vfc out" 1 (List.length (Pgraph.out_edges g vfc));
  check_int "vm in" 1 (List.length (Pgraph.in_edges g vm));
  Pgraph.remove g e2;
  check_int "edge gone" 0 (List.length (Pgraph.out_edges g vfc));
  (* Removing a vertex drops incident edges. *)
  Pgraph.remove g vm;
  check_int "vm incident edges gone" 3 (Pgraph.vertex_count g)

let test_property_graph_accepts_garbage () =
  (* The contrast of Section 6.1: no schema, no warnings. *)
  let g = Pgraph.create () in
  let v1 = Pgraph.add_vertex g ~label:"Whatever" (props [ ("id", s "not-an-int") ]) in
  let v2 = Pgraph.add_vertex g ~label:"Whatever" (props [ ("id", Value.Bool true) ]) in
  ignore (Pgraph.add_edge g ~label:"Nonsense:::" ~src:v1 ~dst:v2 (props []));
  check_int "garbage loaded silently" 2 (Pgraph.vertex_count g);
  (* The only check a property graph gives you: dangling endpoints. *)
  Alcotest.check_raises "dangling endpoint"
    (Invalid_argument "Pgraph.add_edge: endpoints must be existing vertices")
    (fun () -> ignore (Pgraph.add_edge g ~label:"x" ~src:v1 ~dst:999 (props [])))

(* ---------------- traversals ---------------- *)

let run_ids g steps =
  List.map (fun (e : Pgraph.element) -> e.id)
    (Traversal.results g (Traversal.run g steps))

let test_traversal_chain () =
  let g, vnf, _, _, host, _, _, _ = small_graph () in
  let ids =
    run_ids g
      [
        Traversal.V;
        Traversal.Has_label "Node:VNF";
        Traversal.Out_e;
        Traversal.In_v;
        Traversal.Out_e;
        Traversal.In_v;
        Traversal.Out_e;
        Traversal.In_v;
      ]
  in
  check_bool "reaches host" true (ids = [ host ]);
  let back = run_ids g [ Traversal.V_ids [ host ]; Traversal.In_e; Traversal.Out_v ] in
  check_bool "back one hop lands on vm" true (List.length back = 1);
  ignore vnf

let test_traversal_repeat_emit () =
  let g, vnf, vfc, vm, host, _, _, _ = small_graph () in
  (* repeat(out().in()).times(1..3).emit() from the VNF reaches the
     three lower layers. *)
  let ids =
    run_ids g
      [
        Traversal.V_ids [ vnf ];
        Traversal.Repeat ([ Traversal.Out_e; Traversal.In_v ], 1, 3);
      ]
  in
  check_bool "emits every layer" true
    (List.sort_uniq Int.compare ids = List.sort_uniq Int.compare [ vfc; vm; host ])

let test_traversal_union_and_has () =
  let g, _, _, _, _, _, _, _ = small_graph () in
  let ids =
    run_ids g
      [
        Traversal.V;
        Traversal.Union
          [
            [ Traversal.Has_label "Node:VNF" ];
            [ Traversal.Has ("status", Traversal.Eq, s "Green") ];
          ];
      ]
  in
  check_int "vnf + green vm" 2 (List.length ids)

let test_traversal_simple_path () =
  let g = Pgraph.create () in
  let a = Pgraph.add_vertex g ~label:"N" (props []) in
  let b = Pgraph.add_vertex g ~label:"N" (props []) in
  ignore (Pgraph.add_edge g ~label:"E" ~src:a ~dst:b (props []));
  ignore (Pgraph.add_edge g ~label:"E" ~src:b ~dst:a (props []));
  let without =
    run_ids g
      [ Traversal.V_ids [ a ];
        Traversal.Repeat ([ Traversal.Out_e; Traversal.In_v ], 2, 2) ]
  in
  check_int "cycles back without simplePath" 1 (List.length without);
  let with_simple =
    run_ids g
      [ Traversal.V_ids [ a ];
        Traversal.Repeat ([ Traversal.Out_e; Traversal.In_v ], 2, 2);
        Traversal.Simple_path ]
  in
  check_int "simplePath prunes the cycle" 0 (List.length with_simple)

let test_traversal_paths () =
  let g, vnf, vfc, _, _, e1, _, _ = small_graph () in
  let trs =
    Traversal.run g [ Traversal.V_ids [ vnf ]; Traversal.Out_e; Traversal.In_v ]
  in
  match Traversal.paths g trs with
  | [ path ] ->
      check_bool "full pathway recorded" true
        (List.map (fun (e : Pgraph.element) -> e.id) path = [ vnf; e1; vfc ])
  | _ -> Alcotest.fail "expected one path"

let test_gremlin_rendering () =
  let text =
    Traversal.to_gremlin
      [
        Traversal.V;
        Traversal.Has_label "Node:VM";
        Traversal.Has ("id", Traversal.Eq, i 55);
        Traversal.Repeat ([ Traversal.Out_e; Traversal.In_v ], 1, 4);
      ]
  in
  let contains ~affix s =
    let n = String.length s and m = String.length affix in
    let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
    go 0
  in
  check_bool "starts with g." true (String.length text > 2 && String.sub text 0 2 = "g.");
  check_bool "label prefix step" true (contains ~affix:"hasLabel(startingWith('Node:VM'))" text);
  check_bool "has step" true (contains ~affix:"has('id', 55)" text);
  check_bool "repeat step" true (contains ~affix:"repeat(outE().inV()).times(1..4)" text)


let test_temporal_steps () =
  let g = Pgraph.create () in
  let tp = Nepal_temporal.Time_point.of_string_exn in
  let period a b =
    Value.List
      [
        Value.Time (tp a);
        (match b with None -> Value.Null | Some x -> Value.Time (tp x));
      ]
  in
  let v_old =
    Pgraph.add_vertex g ~label:"Node:VM"
      (props [ ("sys_period", period "2017-02-01 00:00" (Some "2017-02-05 00:00")) ])
  in
  let v_live =
    Pgraph.add_vertex g ~label:"Node:VM"
      (props [ ("sys_period", period "2017-02-03 00:00" None) ])
  in
  ignore v_old;
  ignore v_live;
  let ids steps = run_ids g (Traversal.V :: steps) in
  check_int "current sees only live" 1
    (List.length (ids [ Traversal.Has_period_current ]));
  check_int "slice at overlap sees both" 2
    (List.length (ids [ Traversal.Has_period_at (tp "2017-02-04 00:00") ]));
  check_int "slice before live's birth" 1
    (List.length (ids [ Traversal.Has_period_at (tp "2017-02-02 00:00") ]));
  check_int "window overlap" 2
    (List.length
       (ids [ Traversal.Has_period_overlaps (tp "2017-02-01 12:00", tp "2017-02-03 12:00") ]));
  check_int "window after old's death" 1
    (List.length
       (ids [ Traversal.Has_period_overlaps (tp "2017-02-06 00:00", tp "2017-02-07 00:00") ]))

let () =
  Alcotest.run "nepal_gremlin"
    [
      ( "pgraph",
        [
          Alcotest.test_case "label prefixes" `Quick test_label_prefix_matching;
          Alcotest.test_case "adjacency & removal" `Quick test_adjacency_and_removal;
          Alcotest.test_case "garbage accepted silently" `Quick
            test_property_graph_accepts_garbage;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "chain" `Quick test_traversal_chain;
          Alcotest.test_case "repeat/emit" `Quick test_traversal_repeat_emit;
          Alcotest.test_case "union + has" `Quick test_traversal_union_and_has;
          Alcotest.test_case "simplePath" `Quick test_traversal_simple_path;
          Alcotest.test_case "path recording" `Quick test_traversal_paths;
          Alcotest.test_case "gremlin text" `Quick test_gremlin_rendering;
          Alcotest.test_case "temporal steps" `Quick test_temporal_steps;
        ] );
    ]

(* Retargetable architecture (Sections 3.1 and 5): the same Nepal
   queries evaluated through the native store, the generated-SQL
   relational target, and the generated-Gremlin property-graph target
   must return identical pathway sets — under snapshot, timeslice and
   time-range constraints. Also checks the query text each target
   logged, and a cross-backend join (the data-integration story). *)

module Nepal = Core.Nepal
module Q = Nepal_query

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tp = Nepal.Time_point.of_string_exn
let t0 = tp "2017-02-01 00:00:00"
let t1 = tp "2017-02-10 00:00:00"
let t_end = tp "2017-03-01 00:00:00"

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

(* A small virtualized service with history, via the generator. *)
let build () =
  let vs = Nepal.Virt_service.generate ~seed:5 ~vnf_count:6 ~server_count:12 ~virtual_networks:8 () in
  Nepal.Virt_service.simulate_history ~seed:6 ~days:10 ~events_per_day:8 vs;
  let db = Nepal.of_store vs.Nepal.Virt_service.store in
  let rb = ok (Nepal.to_relational db) in
  let gb = ok (Nepal.to_gremlin db) in
  (vs, db, rb, gb)

let shared = lazy (build ())

let conns () =
  let _, db, rb, gb = Lazy.force shared in
  [
    ("native", Nepal.conn db);
    ("relational", Nepal.relational_conn rb);
    ("gremlin", Nepal.gremlin_conn gb);
  ]

let eval_paths conn ~tc text =
  let schema = Nepal.Backend.conn_schema conn in
  let rpe = ok (Nepal.Rpe.validate schema (Nepal.Rpe_parser.parse_exn text)) in
  ok (Nepal.Eval_rpe.find conn ~tc rpe)

let path_keys paths = List.map Nepal.Path.key paths

let assert_all_agree ~tc text =
  match conns () with
  | [] -> ()
  | (ref_name, ref_conn) :: rest ->
      let reference = path_keys (eval_paths ref_conn ~tc text) in
      check_bool
        (Printf.sprintf "%s returns results for %s" ref_name text)
        true
        (reference <> [] || true);
      List.iter
        (fun (name, conn) ->
          let got = path_keys (eval_paths conn ~tc text) in
          if got <> reference then
            Alcotest.failf "%s disagrees with %s on %s: %d vs %d paths" name
              ref_name text (List.length got) (List.length reference))
        rest;
      ()

let queries =
  [
    "VNF(id=100)->[Vertical()]{1,6}->Server()";
    "VNF()->[Vertical()]{1,6}->Server(id=23003)";
    "Container(id=2001)->[VirtualLink()]{1,4}->Container(id=2004)";
    "Server(id=23001)->[Connects()]{1,4}->Server(id=23007)";
    "VNF(id=101)->ComposedOf()->VFC()";
    "VFC()->OnVM()->Container(status='Green')->OnServer()->Server(id=23002)";
    "(VNF(id=100)|VNF(id=103))->[Vertical()]{1,3}->Container()";
  ]

let test_snapshot_equivalence () =
  List.iter (fun q -> assert_all_agree ~tc:Nepal.Time_constraint.Snapshot q) queries

let test_timeslice_equivalence () =
  let tc = Nepal.Time_constraint.at t1 in
  List.iter (fun q -> assert_all_agree ~tc q) queries

let test_range_equivalence () =
  let tc = Nepal.Time_constraint.range t0 t_end in
  List.iter (fun q -> assert_all_agree ~tc q) queries

let test_range_validity_agreement () =
  (* Not just the same paths: the same maximal validity sets. *)
  let tc = Nepal.Time_constraint.range t0 t_end in
  let text = "VNF(id=100)->[Vertical()]{1,6}->Server()" in
  match conns () with
  | (_, ref_conn) :: rest ->
      let reference = eval_paths ref_conn ~tc text in
      List.iter
        (fun (name, conn) ->
          let got = eval_paths conn ~tc text in
          List.iter2
            (fun (a : Nepal.Path.t) (b : Nepal.Path.t) ->
              match (a.valid, b.valid) with
              | Some va, Some vb ->
                  if not (Nepal.Interval_set.equal va vb) then
                    Alcotest.failf "%s validity differs for %s" name
                      (Nepal.Path.to_string a)
              | _ -> Alcotest.failf "%s missing validity" name)
            reference got)
        rest
  | [] -> ()

let test_sql_log () =
  let _, db, rb, _ = Lazy.force shared in
  ignore (Nepal.Relational_backend.take_log rb);
  let conn = Nepal.relational_conn rb in
  ignore (eval_paths conn ~tc:Nepal.Time_constraint.Snapshot
            "VNF(id=100)->[Vertical()]{1,6}->Server()");
  let log = Nepal.Relational_backend.take_log rb in
  check_bool "log nonempty" true (log <> []);
  check_bool "anchors via SELECT" true
    (List.exists (contains ~affix:"SELECT") log);
  check_bool "extends join with cycle check" true
    (List.exists (contains ~affix:"ANY(uid_list)") log);
  ignore db

let test_gremlin_log () =
  let _, _, _, gb = Lazy.force shared in
  ignore (Nepal.Gremlin_backend.take_log gb);
  let conn = Nepal.gremlin_conn gb in
  ignore (eval_paths conn ~tc:Nepal.Time_constraint.Snapshot
            "VNF(id=100)->[Vertical()]{1,6}->Server()");
  let log = Nepal.Gremlin_backend.take_log gb in
  check_bool "log nonempty" true (log <> []);
  check_bool "uses label-prefix matching" true
    (List.exists (contains ~affix:"hasLabel(startingWith('Node:VNF'))") log);
  check_bool "walks edges" true (List.exists (contains ~affix:"outE()") log)

let test_cross_backend_join () =
  (* D1 on the relational target, Phys on gremlin: the coordination
     layer joins across databases (the paper's fragmented-inventory
     requirement). *)
  let _, db, rb, gb = Lazy.force shared in
  let q =
    "Retrieve Phys From PATHS D1, PATHS Phys \
     Where D1 MATCHES VNF(id=100)->[Vertical()]{1,6}->Server() \
     And Phys MATCHES [Connects()]{1,2} \
     And source(Phys) = target(D1)"
  in
  let run_with binds = ok (Nepal.query_on (Nepal.conn db) ~binds q) in
  let native_only = run_with [] in
  let mixed =
    run_with
      [ ("D1", Nepal.relational_conn rb); ("Phys", Nepal.gremlin_conn gb) ]
  in
  check_int "cross-backend join agrees with native"
    (Nepal.Engine.result_count native_only)
    (Nepal.Engine.result_count mixed);
  check_bool "join produced something" true (Nepal.Engine.result_count mixed > 0)

let test_engine_query_on_all_backends () =
  let q =
    "Select source(P).name From PATHS P \
     Where P MATCHES VNF()->[Vertical()]{1,6}->Server(id=23003)"
  in
  let results =
    List.map
      (fun (name, conn) ->
        match ok (Nepal.query_on conn q) with
        | Nepal.Engine.Table { rows; _ } ->
            (name, List.sort compare (List.map (List.map Nepal.Value.to_string) rows))
        | _ -> Alcotest.fail "expected table")
      (conns ())
  in
  match results with
  | (_, reference) :: rest ->
      List.iter
        (fun (name, got) ->
          check_bool (name ^ " agrees on Select") true (got = reference))
        rest
  | [] -> ()

let test_changed_field_timeslice () =
  (* Regression: an element whose predicate field changed after the
     queried instant must still be found by every backend (property
     pushdown must not filter on latest values under At/Range). *)
  let schema =
    Nepal.Tosca.parse_exn
      "node_types:\n  VM:\n    properties:\n      id: int\n      status: string\n"
  in
  let db = Nepal.create schema in
  let ok' = ok in
  let at0 = tp "2017-02-01 00:00:00" and at1 = tp "2017-02-05 00:00:00" in
  let uid =
    ok'
      (Nepal.insert_node db ~at:at0 ~cls:"VM"
         ~fields:(Nepal.Strmap.of_list
                    [ ("id", Nepal.Value.Int 1); ("status", Nepal.Value.Str "Green") ]))
  in
  ok'
    (Nepal.update db ~at:at1 uid
       ~fields:(Nepal.Strmap.of_list [ ("status", Nepal.Value.Str "Red") ]));
  let rb = ok' (Nepal.to_relational db) in
  let gb = ok' (Nepal.to_gremlin db) in
  let q tc_prefix =
    tc_prefix ^ " Retrieve P From PATHS P Where P MATCHES VM(status='Green')"
  in
  List.iter
    (fun (name, conn) ->
      let past =
        Nepal.Engine.result_count (ok' (Nepal.query_on conn (q "AT '2017-02-02 00:00'")))
      in
      let now = Nepal.Engine.result_count (ok' (Nepal.query_on conn (q ""))) in
      check_int (name ^ ": green in the past") 1 past;
      check_int (name ^ ": not green now") 0 now)
    [
      ("native", Nepal.conn db);
      ("relational", Nepal.relational_conn rb);
      ("gremlin", Nepal.gremlin_conn gb);
    ]

let test_storage_roundtrip_counts () =
  let vs, _, rb, gb = Lazy.force shared in
  let store = vs.Nepal.Virt_service.store in
  check_int "relational row count = store versions"
    (Nepal.Graph_store.count_versions store)
    (Nepal.Relational_backend.stored_rows rb);
  check_int "gremlin element count = current entities"
    (Nepal.Graph_store.count_current_total store
    + (Nepal.Graph_store.count_entities store
      - Nepal.Graph_store.count_current_total store))
    (Nepal.Gremlin_backend.element_count gb)


(* Property: under a *random* mutation history, the three backends
   agree on a battery of queries at every temporal constraint. *)
let prop_random_churn_equivalence =
  QCheck.Test.make ~name:"random churn: all backends agree" ~count:15
    QCheck.(pair small_int (list_of_size (QCheck.Gen.return 30) (pair (int_bound 5) small_int)))
    (fun (seed, ops) ->
      let schema =
        Nepal.Tosca.parse_exn
          "node_types:\n  N:\n    properties:\n      id: int\n      tag: string\n\
           edge_types:\n  E:\n    properties:\n      w: int\n"
      in
      let db = Nepal.create schema in
      let rng = Nepal.Prng.create seed in
      let clock = ref (tp "2017-04-01 00:00:00") in
      let next_at () =
        clock := Nepal.Time_point.add_seconds !clock 60.;
        !clock
      in
      let store = Nepal.store db in
      let live_nodes () =
        List.filter
          (fun u ->
            match Nepal.Graph_store.get store ~tc:Nepal.Time_constraint.Snapshot u with
            | Some e -> Nepal.Entity.is_node e
            | None -> false)
          (Nepal.Graph_store.live_uids store)
      in
      let mid = ref None in
      List.iteri
        (fun k (kind, n) ->
          if k = 15 then mid := Some !clock;
          let at = next_at () in
          match kind with
          | 0 | 1 ->
              ignore
                (Nepal.insert_node db ~at ~cls:"N"
                   ~fields:
                     (Nepal.Strmap.of_list
                        [ ("id", Nepal.Value.Int n);
                          ("tag", Nepal.Value.Str (if n mod 2 = 0 then "a" else "b")) ]))
          | 2 -> (
              match live_nodes () with
              | a :: _ when List.length (live_nodes ()) >= 2 ->
                  let nodes = Array.of_list (live_nodes ()) in
                  let b = Nepal.Prng.choose rng nodes in
                  if a <> b then
                    ignore
                      (Nepal.insert_edge db ~at ~cls:"E" ~src:a ~dst:b
                         ~fields:(Nepal.Strmap.of_list [ ("w", Nepal.Value.Int n) ]))
              | _ -> ())
          | 3 -> (
              match live_nodes () with
              | [] -> ()
              | l ->
                  let u = List.nth l (n mod List.length l) in
                  ignore
                    (Nepal.update db ~at u
                       ~fields:(Nepal.Strmap.of_list [ ("tag", Nepal.Value.Str "c") ])))
          | _ -> (
              match live_nodes () with
              | [] -> ()
              | l ->
                  let u = List.nth l (n mod List.length l) in
                  ignore (Nepal.delete db ~at ~cascade:true u)))
        ops;
      let rb = ok (Nepal.to_relational db) in
      let gb = ok (Nepal.to_gremlin db) in
      let conns =
        [ Nepal.conn db; Nepal.relational_conn rb; Nepal.gremlin_conn gb ]
      in
      let tcs =
        [ Nepal.Time_constraint.Snapshot ]
        @ (match !mid with Some m -> [ Nepal.Time_constraint.at m ] | None -> [])
        @ [ Nepal.Time_constraint.range (tp "2017-04-01 00:00:00") !clock ]
      in
      let queries =
        [ "N()"; "N(tag='a')"; "N(tag='c')"; "E()"; "N()->E()->N(tag='b')";
          "[E()]{1,3}" ]
      in
      List.for_all
        (fun tc ->
          List.for_all
            (fun q ->
              match List.map (fun c -> path_keys (eval_paths c ~tc q)) conns with
              | ref_keys :: rest -> List.for_all (fun k -> k = ref_keys) rest
              | [] -> true)
            queries)
        tcs)

let () =
  Alcotest.run "nepal_backends"
    [
      ( "equivalence",
        [
          Alcotest.test_case "snapshot" `Quick test_snapshot_equivalence;
          Alcotest.test_case "timeslice" `Quick test_timeslice_equivalence;
          Alcotest.test_case "time range" `Quick test_range_equivalence;
          Alcotest.test_case "range validity" `Quick test_range_validity_agreement;
        ] );
      ( "code_generation",
        [
          Alcotest.test_case "SQL log" `Quick test_sql_log;
          Alcotest.test_case "Gremlin log" `Quick test_gremlin_log;
        ] );
      ( "integration",
        [
          Alcotest.test_case "cross-backend join" `Quick test_cross_backend_join;
          Alcotest.test_case "Select on all backends" `Quick test_engine_query_on_all_backends;
          Alcotest.test_case "changed-field timeslice" `Quick test_changed_field_timeslice;
          Alcotest.test_case "storage counts" `Quick test_storage_roundtrip_counts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_churn_equivalence ] );
    ]

(* The mini relational engine: INHERITS, plan operators, expressions,
   temporal tables, SQL rendering, join-cache invalidation. *)

open Nepal_relational
module Value = Nepal_schema.Value
module Time_point = Nepal_temporal.Time_point
module Time_constraint = Nepal_temporal.Time_constraint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tp = Time_point.of_string_exn
let t0 = tp "2017-02-01 00:00:00"
let t1 = tp "2017-02-05 00:00:00"
let t2 = tp "2017-02-10 00:00:00"

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let i n = Value.Int n
let s x = Value.Str x

(* -- tables & INHERITS ---------------------------------------------- *)

let vm_family () =
  let db = Database.create () in
  ok (Database.create_table db ~name:"Node" [ "id_" ]);
  ok (Database.create_table db ~parent:"Node" ~name:"VM" [ "id_"; "status" ]);
  ok (Database.create_table db ~parent:"VM" ~name:"VMWare" [ "id_"; "status"; "dc" ]);
  ok (Database.create_table db ~parent:"VM" ~name:"OnMetal" [ "id_"; "status" ]);
  ok (Database.insert db "VM" [ ("id_", i 1); ("status", s "Green") ]);
  ok (Database.insert db "VMWare" [ ("id_", i 2); ("status", s "Red"); ("dc", s "east") ]);
  ok (Database.insert db "OnMetal" [ ("id_", i 3); ("status", s "Green") ]);
  db

let test_inherits_scan () =
  let db = vm_family () in
  let rs = Plan.run_exn db (Plan.Scan { table = "VM"; only = false }) in
  check_int "family scan sees children" 3 (Plan.rowset_count rs);
  let rs_only = Plan.run_exn db (Plan.Scan { table = "VM"; only = true }) in
  check_int "ONLY scan" 1 (Plan.rowset_count rs_only);
  let rs_node = Plan.run_exn db (Plan.Scan { table = "Node"; only = false }) in
  check_int "root family" 3 (Plan.rowset_count rs_node);
  (* Child columns are projected away on a parent scan. *)
  check_bool "parent cols only" true
    (Array.to_list rs.Plan.cols = [ "id_"; "status" ])

let test_child_prefix_enforced () =
  let db = Database.create () in
  ok (Database.create_table db ~name:"P" [ "a"; "b" ]);
  (* Reordered parent columns are fine (merge is by name)... *)
  ok (Database.create_table db ~parent:"P" ~name:"C" [ "b"; "a"; "c" ]);
  (* ...but dropping a parent column is not. *)
  match Database.create_table db ~parent:"P" ~name:"D" [ "a"; "c" ] with
  | Ok () -> Alcotest.fail "child missing a parent column accepted"
  | Error _ -> ()

let test_drop_rules () =
  let db = vm_family () in
  (match Database.drop_table db "VM" with
  | Ok () -> Alcotest.fail "dropped a table with children"
  | Error _ -> ());
  ok (Database.drop_table db "VMWare");
  check_bool "gone" false (Database.mem_table db "VMWare")

(* -- plan operators --------------------------------------------------- *)

let test_filter_project () =
  let db = vm_family () in
  let plan =
    Plan.Project
      ( Plan.Filter
          ( Plan.Scan { table = "VM"; only = false },
            Expr.Cmp (Expr.Col "status", Expr.Eq, Expr.Const (s "Green")) ),
        [ ("vm_id", Expr.Col "id_") ] )
  in
  let rs = Plan.run_exn db plan in
  check_int "two green" 2 (Plan.rowset_count rs);
  check_bool "projected col" true (rs.Plan.cols = [| "vm_id" |])

let test_hash_join_and_residual () =
  let db = vm_family () in
  ok (Database.create_table db ~name:"edges" [ "src"; "dst" ]);
  ok (Database.insert db "edges" [ ("src", i 1); ("dst", i 2) ]);
  ok (Database.insert db "edges" [ ("src", i 1); ("dst", i 3) ]);
  ok (Database.insert db "edges" [ ("src", i 2); ("dst", i 3) ]);
  let plan =
    Plan.Hash_join
      {
        left = Plan.Scan { table = "edges"; only = false };
        right =
          Plan.Project
            ( Plan.Scan { table = "VM"; only = false },
              [ ("vm_id", Expr.Col "id_"); ("vm_status", Expr.Col "status") ] );
        left_key = Expr.Col "dst";
        right_key = Expr.Col "vm_id";
        residual = Expr.Cmp (Expr.Col "vm_status", Expr.Eq, Expr.Const (s "Green"));
      }
  in
  let rs = Plan.run_exn db plan in
  (* Joins landing on vm 3 (green): edges 1->3 and 2->3. *)
  check_int "residual filters" 2 (Plan.rowset_count rs)

let test_union_distinct_sort_limit () =
  let db = vm_family () in
  let vm = Plan.Scan { table = "VM"; only = true } in
  let rs = Plan.run_exn db (Plan.Union_all [ vm; vm; vm ]) in
  check_int "union all" 3 (Plan.rowset_count rs);
  let rs2 = Plan.run_exn db (Plan.Distinct (Plan.Union_all [ vm; vm ])) in
  check_int "distinct" 1 (Plan.rowset_count rs2);
  let all = Plan.Scan { table = "VM"; only = false } in
  let sorted =
    Plan.run_exn db (Plan.Sort (all, [ (Expr.Col "id_", `Desc) ]))
  in
  (match sorted.Plan.rows with
  | first :: _ -> check_bool "desc order" true (Value.equal first.(0) (i 3))
  | [] -> Alcotest.fail "empty");
  let limited = Plan.run_exn db (Plan.Limit (all, 2)) in
  check_int "limit" 2 (Plan.rowset_count limited)

let test_aggregate () =
  let db = vm_family () in
  let plan =
    Plan.Aggregate
      {
        input = Plan.Scan { table = "VM"; only = false };
        group_by = [ "status" ];
        aggs = [ ("n", Plan.Count); ("max_id", Plan.Max "id_") ];
      }
  in
  let rs = Plan.run_exn db plan in
  check_int "two groups" 2 (Plan.rowset_count rs);
  let green =
    List.find
      (fun row -> Value.equal (Plan.column_value rs row "status") (s "Green"))
      rs.Plan.rows
  in
  check_bool "count green" true (Value.equal (Plan.column_value rs green "n") (i 2));
  check_bool "max id green" true
    (Value.equal (Plan.column_value rs green "max_id") (i 3))

let test_array_exprs () =
  let env c =
    match c with
    | "uid_list" -> Value.List [ i 1; i 2 ]
    | "x" -> i 2
    | _ -> Value.Null
  in
  check_bool "contains" true
    (Expr.eval_bool env (Expr.Arr_contains (Expr.Col "x", Expr.Col "uid_list")));
  check_bool "not contains" true
    (Expr.eval_bool env
       (Expr.Not (Expr.Arr_contains (Expr.Const (i 9), Expr.Col "uid_list"))));
  match Expr.eval env (Expr.Arr_concat (Expr.Col "uid_list", Expr.Arr_lit [ Expr.Const (i 3) ])) with
  | Value.List l -> check_int "concat length" 3 (List.length l)
  | _ -> Alcotest.fail "expected list"

(* -- temporal tables -------------------------------------------------- *)

let temporal_db () =
  let db = Database.create () in
  ok (Temporal_tables.create db ~name:"VM" [ "id_"; "status" ]);
  ok (Temporal_tables.insert db "VM" ~at:t0 [ ("id_", i 1); ("status", s "Green") ]);
  ok (Temporal_tables.insert db "VM" ~at:t0 [ ("id_", i 2); ("status", s "Green") ]);
  db

let where_id n = Expr.Cmp (Expr.Col "id_", Expr.Eq, Expr.Const (i n))

let test_temporal_update_moves_history () =
  let db = temporal_db () in
  let n = ok (Temporal_tables.update db "VM" ~at:t1 ~where_:(where_id 1) ~set:[ ("status", s "Red") ]) in
  check_int "one row updated" 1 n;
  let current = Plan.run_exn db (Temporal_tables.current db "VM") in
  check_int "current unchanged count" 2 (Plan.rowset_count current);
  let hist =
    Plan.run_exn db (Plan.Scan { table = Temporal_tables.history_name "VM"; only = false })
  in
  check_int "one archived version" 1 (Plan.rowset_count hist);
  let historical = Plan.run_exn db (Temporal_tables.historical db "VM") in
  check_int "historical view" 3 (Plan.rowset_count historical)

let test_temporal_slice () =
  let db = temporal_db () in
  ignore (ok (Temporal_tables.update db "VM" ~at:t1 ~where_:(where_id 1) ~set:[ ("status", s "Red") ]));
  ignore (ok (Temporal_tables.delete db "VM" ~at:t2 ~where_:(where_id 2)));
  (* Timeslice before any change: both green. *)
  let before = Plan.run_exn db (Temporal_tables.slice db "VM" (Time_constraint.at t0)) in
  check_int "slice at t0" 2 (Plan.rowset_count before);
  let at_t1 = Plan.run_exn db (Temporal_tables.slice db "VM" (Time_constraint.at t1)) in
  check_int "slice at t1" 2 (Plan.rowset_count at_t1);
  let now = Plan.run_exn db (Temporal_tables.slice db "VM" Time_constraint.snapshot) in
  check_int "snapshot after delete" 1 (Plan.rowset_count now);
  let range =
    Plan.run_exn db
      (Temporal_tables.slice db "VM" (Time_constraint.range t0 (tp "2017-03-01 00:00")))
  in
  check_int "range sees all versions" 3 (Plan.rowset_count range)

let test_reserved_column () =
  let db = Database.create () in
  match Temporal_tables.create db ~name:"T" [ "sys_period" ] with
  | Ok () -> Alcotest.fail "reserved column accepted"
  | Error _ -> ()

(* -- SQL rendering ----------------------------------------------------- *)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

let test_sql_rendering () =
  let plan =
    Plan.Filter
      ( Plan.Scan { table = "VM"; only = false },
        Expr.And
          ( Expr.Period_contains
              (Expr.Col "sys_period", Expr.Const (Value.Time t0)),
            Expr.Not (Expr.Arr_contains (Expr.Col "id_", Expr.Col "uid_list")) ) )
  in
  let sql = Plan.to_sql plan in
  check_bool "has table" true (contains ~affix:"FROM VM" sql);
  check_bool "has period containment" true (contains ~affix:"sys_period @>" sql);
  check_bool "has ANY" true (contains ~affix:"= ANY(uid_list)" sql)

(* -- join cache --------------------------------------------------------- *)

let test_join_cache_invalidation () =
  let db = vm_family () in
  ok (Database.create_table db ~name:"pairs" [ "k" ]);
  ok (Database.insert db "pairs" [ ("k", i 1) ]);
  let join () =
    Plan.run_exn db
      (Plan.Hash_join
         {
           left = Plan.Scan { table = "pairs"; only = false };
           right = Plan.Scan { table = "VM"; only = false };
           left_key = Expr.Col "k";
           right_key = Expr.Col "id_";
           residual = Expr.tt;
         })
  in
  check_int "first run" 1 (Plan.rowset_count (join ()));
  (* A write to the build side must invalidate the cached hash. *)
  ok (Database.insert db "VM" [ ("id_", i 1); ("status", s "Blue") ]);
  check_int "sees new row" 2 (Plan.rowset_count (join ()))


let test_rename_and_values () =
  let db = vm_family () in
  let plan =
    Plan.Hash_join
      {
        left = Plan.Rename (Plan.Scan { table = "VM"; only = false }, "l");
        right = Plan.Values { cols = [ "k" ]; rows = [ [| i 1 |]; [| i 3 |] ] };
        left_key = Expr.Col "l.id_";
        right_key = Expr.Col "k";
        residual = Expr.tt;
      }
  in
  let rs = Plan.run_exn db plan in
  check_int "rename-qualified join" 2 (Plan.rowset_count rs)

let test_iset_union_aggregate () =
  let db = Database.create () in
  ok (Database.create_table db ~name:"periods" [ "g"; "p" ]);
  let iv a b =
    Ivalue.of_interval_set
      (Nepal_temporal.Interval_set.singleton
         (Nepal_temporal.Interval.between (tp a) (tp b)))
  in
  ok (Database.insert db "periods" [ ("g", i 1); ("p", iv "2017-02-01 00:00" "2017-02-02 00:00") ]);
  ok (Database.insert db "periods" [ ("g", i 1); ("p", iv "2017-02-01 12:00" "2017-02-03 00:00") ]);
  ok (Database.insert db "periods" [ ("g", i 1); ("p", iv "2017-02-05 00:00" "2017-02-06 00:00") ]);
  let plan =
    Plan.Aggregate
      {
        input = Plan.Scan { table = "periods"; only = false };
        group_by = [ "g" ];
        aggs = [ ("u", Plan.Iset_union "p") ];
      }
  in
  let rs = Plan.run_exn db plan in
  check_int "one group" 1 (Plan.rowset_count rs);
  match Ivalue.to_interval_set (Plan.column_value rs (List.hd rs.Plan.rows) "u") with
  | Some set ->
      check_int "merged to two intervals" 2
        (Nepal_temporal.Interval_set.cardinality set)
  | None -> Alcotest.fail "expected an interval set"

let () =
  Alcotest.run "nepal_relational"
    [
      ( "catalog",
        [
          Alcotest.test_case "INHERITS scan" `Quick test_inherits_scan;
          Alcotest.test_case "child column rule" `Quick test_child_prefix_enforced;
          Alcotest.test_case "drop rules" `Quick test_drop_rules;
        ] );
      ( "plans",
        [
          Alcotest.test_case "filter+project" `Quick test_filter_project;
          Alcotest.test_case "hash join" `Quick test_hash_join_and_residual;
          Alcotest.test_case "union/distinct/sort/limit" `Quick test_union_distinct_sort_limit;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "array expressions" `Quick test_array_exprs;
          Alcotest.test_case "rename + values join" `Quick test_rename_and_values;
          Alcotest.test_case "interval-set aggregate" `Quick test_iset_union_aggregate;
        ] );
      ( "temporal_tables",
        [
          Alcotest.test_case "update archives" `Quick test_temporal_update_moves_history;
          Alcotest.test_case "slices" `Quick test_temporal_slice;
          Alcotest.test_case "reserved column" `Quick test_reserved_column;
        ] );
      ("sql", [ Alcotest.test_case "rendering" `Quick test_sql_rendering ]);
      ("cache", [ Alcotest.test_case "invalidation" `Quick test_join_cache_invalidation ]);
    ]

(* The layered model (Figures 1-3) and the two evaluation topologies of
   Section 6: schema width, generated scale, history growth, workload
   shape (forward cheap / reverse explosive / hub-heavy bottom-up). *)

module Nepal = Core.Nepal
module Model = Nepal_netmodel.Model
module Virt = Nepal_netmodel.Virt_service
module Legacy = Nepal_netmodel.Legacy
module Schema = Nepal_schema.Schema
module Store = Nepal_store.Graph_store
module Prng = Nepal_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

(* ---------------- the model schema ---------------- *)

let test_class_counts () =
  let s = Model.schema () in
  (* Paper: "The schema has 12 edge classes and 54 node classes." *)
  check_int "54 node classes" Model.node_class_count
    (List.length (Schema.node_classes s) - 1 (* minus the Node root *));
  check_int "12 edge classes" Model.edge_class_count
    (List.length (Schema.edge_classes s) - 1)

let test_layering_rules () =
  let s = Model.schema () in
  (* One can traverse from a VNF to physical servers only through the
     layer stack — no direct edge is permitted (Figure 3). *)
  check_bool "VNF->VFC composition" true
    (Schema.edge_allowed s ~edge:"ComposedOf" ~src:"VNF_DNS" ~dst:"VFC_Web");
  check_bool "no direct VNF->Server" false
    (Schema.edge_allowed s ~edge:"OnServer" ~src:"VNF_DNS" ~dst:"Server_Blade");
  check_bool "vm on server" true
    (Schema.edge_allowed s ~edge:"OnServer" ~src:"VM_KVM" ~dst:"Server_Blade");
  check_bool "hosted_on under Vertical" true
    (Schema.is_subclass s ~sub:"OnServer" ~sup:"Vertical");
  check_bool "composed_of under Vertical" true
    (Schema.is_subclass s ~sub:"ComposedOf" ~sup:"Vertical")

let test_tosca_export () =
  let text = Model.tosca () in
  match Nepal_schema.Tosca.parse text with
  | Ok s2 ->
      check_int "all classes survive the roundtrip"
        (List.length (Schema.all_classes (Model.schema ())))
        (List.length (Schema.all_classes s2))
  | Error e -> Alcotest.failf "re-parse of exported TOSCA failed: %s" e

(* ---------------- virtualized service ---------------- *)

let vs = lazy (Virt.generate ())

let test_virt_scale () =
  let t = Lazy.force vs in
  let store = t.Virt.store in
  let nodes =
    Store.count_current store ~cls:"Node"
  in
  let edges = Store.count_current store ~cls:"Edge" in
  (* Paper: about 2,000 nodes and 11,000 edges. Accept the same order
     of magnitude. *)
  check_bool (Printf.sprintf "nodes ~2000 (got %d)" nodes) true
    (nodes >= 1_200 && nodes <= 3_000);
  check_bool (Printf.sprintf "edges ~11000 (got %d)" edges) true
    (edges >= 5_000 && edges <= 15_000);
  check_int "33 VNFs as in the paper" 33 (Store.count_current store ~cls:"VNF")

let test_virt_deterministic () =
  let a = Virt.generate ~seed:9 ~vnf_count:5 ~server_count:10 () in
  let b = Virt.generate ~seed:9 ~vnf_count:5 ~server_count:10 () in
  check_int "same node count"
    (Store.count_current a.Virt.store ~cls:"Node")
    (Store.count_current b.Virt.store ~cls:"Node");
  check_int "same edge count"
    (Store.count_current a.Virt.store ~cls:"Edge")
    (Store.count_current b.Virt.store ~cls:"Edge")

let test_virt_history_overhead () =
  let t = Virt.generate ~seed:12 () in
  Virt.simulate_history ~seed:13 t;
  let overhead = Virt.history_overhead t in
  (* Paper: the virtualized-service history is ~6% larger. *)
  check_bool (Printf.sprintf "overhead ~6%% (got %.1f%%)" (overhead *. 100.)) true
    (overhead > 0.02 && overhead < 0.15)

let test_virt_workload_nonzero () =
  let t = Lazy.force vs in
  let db = Nepal.of_store t.Virt.store in
  let rng = Prng.create 99 in
  let count q =
    match ok (Nepal.query db q) with
    | Nepal.Engine.Rows { rows; _ } -> List.length rows
    | _ -> 0
  in
  (* Top-down from every VNF must reach servers. *)
  let vnf = Virt.sample_vnf_id rng t in
  check_bool "top-down nonzero" true (count (Virt.q_top_down ~vnf_id:vnf) > 0);
  (* Bottom-up from some server returns VNFs (resample like the paper,
     avoiding zero-path instances). *)
  let rec try_bottom_up n =
    if n = 0 then 0
    else
      let sid = Virt.sample_server_id rng t in
      let c = count (Virt.q_bottom_up ~server_id:sid) in
      if c > 0 then c else try_bottom_up (n - 1)
  in
  check_bool "bottom-up nonzero" true (try_bottom_up 10 > 0);
  (* VM-VM through the virtual overlay. *)
  let rec try_vm_vm n =
    if n = 0 then 0
    else
      let a = Virt.sample_container_id rng t in
      let b = Virt.sample_container_id rng t in
      let c = if a = b then 0 else count (Virt.q_vm_vm ~a ~b) in
      if c > 0 then c else try_vm_vm (n - 1)
  in
  check_bool "vm-vm nonzero" true (try_vm_vm 20 > 0);
  (* Host-Host physical, 4 hops. *)
  let rec try_hh n =
    if n = 0 then 0
    else
      let a = Virt.sample_server_id rng t in
      let b = Virt.sample_server_id rng t in
      let c = if a = b then 0 else count (Virt.q_host_host ~hops:4 ~a ~b) in
      if c > 0 then c else try_hh (n - 1)
  in
  check_bool "host-host nonzero" true (try_hh 10 > 0)

let test_virt_hosthost6_explodes () =
  let t = Lazy.force vs in
  let db = Nepal.of_store t.Virt.store in
  let rng = Prng.create 5 in
  let count q =
    match ok (Nepal.query db q) with
    | Nepal.Engine.Rows { rows; _ } -> List.length rows
    | _ -> 0
  in
  (* The paper: length-6 Host-Host explores far more paths than
     length-4. Compare on one instance pair with both lengths. *)
  let rec find_pair n =
    if n = 0 then None
    else
      let a = Virt.sample_server_id rng t in
      let b = Virt.sample_server_id rng t in
      if a <> b && count (Virt.q_host_host ~hops:4 ~a ~b) > 0 then Some (a, b)
      else find_pair (n - 1)
  in
  match find_pair 10 with
  | Some (a, b) ->
      let c4 = count (Virt.q_host_host ~hops:4 ~a ~b) in
      let c6 = count (Virt.q_host_host ~hops:6 ~a ~b) in
      check_bool (Printf.sprintf "6 hops >= 4 hops (%d vs %d)" c6 c4) true (c6 >= c4)
  | None -> Alcotest.fail "no connected server pair found"

(* ---------------- legacy topology ---------------- *)

let legacy_flat = lazy (Legacy.generate ~nodes:4_000 Legacy.Flat)

let test_legacy_scale () =
  let t = Lazy.force legacy_flat in
  let store = t.Legacy.store in
  let nodes = Store.count_current store ~cls:"LegacyNode" in
  let edges = Store.count_current store ~cls:"LegacyEdge" in
  check_bool (Printf.sprintf "nodes (got %d)" nodes) true
    (nodes >= 3_000 && nodes <= 4_100);
  (* Paper ratio: 7.1M / 1.6M = 4.4 edges per node. *)
  let ratio = float_of_int edges /. float_of_int nodes in
  check_bool (Printf.sprintf "edge/node ratio ~4.4 (got %.2f)" ratio) true
    (ratio > 3.0 && ratio < 5.5)

let test_legacy_indicators () =
  check_int "66 type indicators" 66 Legacy.indicator_count;
  check_int "indicator list length" 66 (List.length Legacy.indicators);
  let s = Legacy.schema Legacy.Classed in
  check_int "66 concrete edge subclasses" 66
    (List.length (Schema.concrete_subclasses s "LegacyEdge"))

let test_legacy_forward_vs_reverse () =
  let t = Lazy.force legacy_flat in
  let db = Nepal.of_store t.Legacy.store in
  let rng = Prng.create 3 in
  let count q =
    match ok (Nepal.query db q) with
    | Nepal.Engine.Rows { rows; _ } -> List.length rows
    | _ -> 0
  in
  let rec sample_counts n (fwd_acc, rev_acc) =
    if n = 0 then (fwd_acc, rev_acc)
    else
      let fwd = count (Legacy.q_service_path t ~src:(Legacy.sample_source rng t)) in
      let rev = count (Legacy.q_reverse_path t ~sink:(Legacy.sample_sink rng t)) in
      sample_counts (n - 1) (fwd_acc + fwd, rev_acc + rev)
  in
  let fwd, rev = sample_counts 3 (0, 0) in
  (* The paper's shape: 32.9 forward vs 391,000 reverse. *)
  check_bool (Printf.sprintf "reverse ≫ forward (%d vs %d)" rev fwd) true
    (rev > 10 * max 1 fwd)

let test_legacy_vertical_queries () =
  let t = Lazy.force legacy_flat in
  let db = Nepal.of_store t.Legacy.store in
  let rng = Prng.create 4 in
  let count q =
    match ok (Nepal.query db q) with
    | Nepal.Engine.Rows { rows; _ } -> List.length rows
    | _ -> 0
  in
  let src = Legacy.sample_top rng t in
  check_bool "top-down finds the chain" true (count (Legacy.q_top_down t ~src) > 0);
  (* Bottom-up from the physical end of the same chain. *)
  let td = ok (Nepal.query db (Legacy.q_top_down t ~src)) in
  match td with
  | Nepal.Engine.Rows { rows = row :: _; _ } ->
      let p = Nepal.Strmap.find "P" row.Nepal.Engine.paths in
      let phys_id =
        match Nepal.Path.field (Nepal.Path.target p) "id" with
        | Nepal.Value.Int v -> v
        | _ -> Alcotest.fail "no id"
      in
      check_bool "bottom-up finds it back" true
        (count (Legacy.q_bottom_up t ~dst:phys_id) > 0)
  | _ -> Alcotest.fail "no top-down paths"

let test_legacy_hubs_exist () =
  let t = Lazy.force legacy_flat in
  let store = t.Legacy.store in
  (* Hub nodes must have far larger in-degree than ordinary nodes —
     the cause of the paper's slow bottom-up samples. *)
  let in_degree id =
    match
      Store.lookup store ~tc:Nepal.Time_constraint.Snapshot ~cls:"LegacyNode"
        ~field:"id" (Nepal.Value.Int id)
    with
    | e :: _ ->
        List.length
          (Store.in_edges store ~tc:Nepal.Time_constraint.Snapshot
             e.Nepal_store.Entity.uid)
    | [] -> 0
  in
  let hub = t.Legacy.hub_ids.(0) in
  let non_hub =
    t.Legacy.physical_ids.(Array.length t.Legacy.physical_ids - 1)
  in
  check_bool
    (Printf.sprintf "hub in-degree %d ≫ non-hub %d" (in_degree hub) (in_degree non_hub))
    true
    (in_degree hub > 5 * max 1 (in_degree non_hub))

let test_legacy_reclass_equivalence () =
  let flat = Legacy.generate ~seed:21 ~nodes:1_500 Legacy.Flat in
  let classed = ok (Nepal_loader.Reclass.reclass flat) in
  check_bool "mode switched" true (classed.Legacy.mode = Legacy.Classed);
  let db_flat = Nepal.of_store flat.Legacy.store in
  let db_classed = Nepal.of_store classed.Legacy.store in
  let rng = Prng.create 8 in
  (* The same logical queries must return the same path multisets
     (keys differ since uids are re-assigned; compare counts and
     endpoint ids). *)
  for _ = 1 to 5 do
    let src = Legacy.sample_source rng flat in
    let q_flat = Legacy.q_service_path flat ~src in
    let q_classed = Legacy.q_service_path classed ~src in
    let endpoints db q =
      match ok (Nepal.query db q) with
      | Nepal.Engine.Rows { rows; _ } ->
          List.map
            (fun r ->
              let p = Nepal.Strmap.find "P" r.Nepal.Engine.paths in
              ( Nepal.Path.field (Nepal.Path.source p) "id",
                Nepal.Path.field (Nepal.Path.target p) "id",
                Nepal.Path.length p ))
            rows
          |> List.sort compare
      | _ -> []
    in
    check_bool "same service paths after re-classing" true
      (endpoints db_flat q_flat = endpoints db_classed q_classed)
  done

let () =
  Alcotest.run "nepal_netmodel"
    [
      ( "model",
        [
          Alcotest.test_case "class counts (paper: 54/12)" `Quick test_class_counts;
          Alcotest.test_case "layering rules" `Quick test_layering_rules;
          Alcotest.test_case "tosca export" `Quick test_tosca_export;
        ] );
      ( "virt_service",
        [
          Alcotest.test_case "scale" `Quick test_virt_scale;
          Alcotest.test_case "deterministic" `Quick test_virt_deterministic;
          Alcotest.test_case "history overhead ~6%" `Quick test_virt_history_overhead;
          Alcotest.test_case "workload nonzero" `Quick test_virt_workload_nonzero;
          Alcotest.test_case "host-host 6 explodes" `Quick test_virt_hosthost6_explodes;
        ] );
      ( "legacy",
        [
          Alcotest.test_case "scale" `Quick test_legacy_scale;
          Alcotest.test_case "66 indicators" `Quick test_legacy_indicators;
          Alcotest.test_case "reverse ≫ forward" `Quick test_legacy_forward_vs_reverse;
          Alcotest.test_case "vertical queries" `Quick test_legacy_vertical_queries;
          Alcotest.test_case "hubs" `Quick test_legacy_hubs_exist;
          Alcotest.test_case "re-classing equivalence" `Quick test_legacy_reclass_equivalence;
        ] );
    ]

test/test_relational.ml: Alcotest Array Database Expr Ivalue List Nepal_relational Nepal_schema Nepal_temporal Plan String Temporal_tables

open Nepal_schema
open Nepal_temporal
module Store = Nepal_store.Graph_store
module Entity = Nepal_store.Entity
module Strmap = Nepal_util.Strmap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tp = Time_point.of_string_exn
let t0 = tp "2017-02-01 00:00:00"
let t1 = tp "2017-02-05 00:00:00"
let t2 = tp "2017-02-10 00:00:00"
let t3 = tp "2017-02-15 00:00:00"

let schema () =
  Schema.create_exn
    ~edge_rules:
      [
        { Schema.edge = "hosted_on"; src = "VM"; dst = "Host" };
        { Schema.edge = "connects"; src = "Host"; dst = "Host" };
      ]
    [
      Schema.class_decl "VM" ~parent:"Node"
        ~fields:[ ("vid", Ftype.T_int); ("status", Ftype.T_string) ];
      Schema.class_decl "VMWare" ~parent:"VM";
      Schema.class_decl "Host" ~parent:"Node" ~fields:[ ("hid", Ftype.T_int) ];
      Schema.class_decl "hosted_on" ~parent:"Edge";
      Schema.class_decl "connects" ~parent:"Edge";
    ]

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let fields l = Strmap.of_list l

let mk_store () =
  let st = Store.create (schema ()) in
  let vm =
    ok (Store.insert_node st ~at:t0 ~cls:"VM"
          ~fields:(fields [ ("vid", Value.Int 1); ("status", Value.Str "Green") ]))
  in
  let host =
    ok (Store.insert_node st ~at:t0 ~cls:"Host"
          ~fields:(fields [ ("hid", Value.Int 100) ]))
  in
  let edge =
    ok (Store.insert_edge st ~at:t0 ~cls:"hosted_on" ~src:vm ~dst:host
          ~fields:Strmap.empty)
  in
  (st, vm, host, edge)

(* ---------------- basic lifecycle ---------------- *)

let test_insert_and_get () =
  let st, vm, _host, edge = mk_store () in
  (match Store.get st ~tc:Time_constraint.snapshot vm with
  | Some e ->
      check_bool "class" true (e.Entity.cls = "VM");
      check_bool "is node" true (Entity.is_node e);
      check_bool "field" true (Value.equal (Entity.field e "vid") (Value.Int 1))
  | None -> Alcotest.fail "vm not found");
  match Store.get st ~tc:Time_constraint.snapshot edge with
  | Some e -> check_bool "is edge" true (Entity.is_edge e)
  | None -> Alcotest.fail "edge not found"

let test_schema_violations_rejected () =
  let st = Store.create (schema ()) in
  (* Wrong kind. *)
  (match Store.insert_node st ~at:t0 ~cls:"hosted_on" ~fields:Strmap.empty with
  | Ok _ -> Alcotest.fail "edge class as node accepted"
  | Error _ -> ());
  (* Unknown class. *)
  (match Store.insert_node st ~at:t0 ~cls:"Nope" ~fields:Strmap.empty with
  | Ok _ -> Alcotest.fail "unknown class accepted"
  | Error _ -> ());
  (* Ill-typed field. *)
  (match
     Store.insert_node st ~at:t0 ~cls:"VM" ~fields:(fields [ ("vid", Value.Str "x") ])
   with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (* Edge rule violation: hosted_on must be VM -> Host. *)
  let h1 = ok (Store.insert_node st ~at:t0 ~cls:"Host" ~fields:Strmap.empty) in
  let h2 = ok (Store.insert_node st ~at:t0 ~cls:"Host" ~fields:Strmap.empty) in
  (match Store.insert_edge st ~at:t0 ~cls:"hosted_on" ~src:h1 ~dst:h2 ~fields:Strmap.empty with
  | Ok _ -> Alcotest.fail "rule-violating edge accepted"
  | Error _ -> ());
  (* Dangling endpoint. *)
  match Store.insert_edge st ~at:t0 ~cls:"connects" ~src:h1 ~dst:9999 ~fields:Strmap.empty with
  | Ok _ -> Alcotest.fail "dangling edge accepted"
  | Error _ -> ()

let test_clock_monotonic () =
  let st, _, _, _ = mk_store () in
  match Store.insert_node st ~at:(tp "2016-01-01") ~cls:"Host" ~fields:Strmap.empty with
  | Ok _ -> Alcotest.fail "time travel insert accepted"
  | Error _ -> ()

(* ---------------- versioning / temporal visibility ---------------- *)

let test_update_creates_version () =
  let st, vm, _, _ = mk_store () in
  ok (Store.update st ~at:t1 vm ~fields:(fields [ ("status", Value.Str "Red") ]));
  check_int "two versions" 2 (List.length (Store.versions st vm));
  (* Snapshot sees the new value. *)
  (match Store.get st ~tc:Time_constraint.snapshot vm with
  | Some e -> check_bool "now red" true (Value.equal (Entity.field e "status") (Value.Str "Red"))
  | None -> Alcotest.fail "missing");
  (* Timeslice before the update sees the old value. *)
  (match Store.get st ~tc:(Time_constraint.at t0) vm with
  | Some e ->
      check_bool "was green" true
        (Value.equal (Entity.field e "status") (Value.Str "Green"))
  | None -> Alcotest.fail "missing at t0");
  (* Untouched fields carried over. *)
  match Store.get st ~tc:Time_constraint.snapshot vm with
  | Some e -> check_bool "vid kept" true (Value.equal (Entity.field e "vid") (Value.Int 1))
  | None -> Alcotest.fail "missing"

let test_delete_and_timeslice () =
  let st, vm, _, edge = mk_store () in
  ok (Store.delete st ~at:t1 edge);
  ok (Store.delete st ~at:t1 vm);
  check_bool "gone from snapshot" true
    (Store.get st ~tc:Time_constraint.snapshot vm = None);
  check_bool "visible in the past" true
    (Store.get st ~tc:(Time_constraint.at t0) vm <> None);
  check_bool "not visible after deletion" true
    (Store.get st ~tc:(Time_constraint.at t2) vm = None)

let test_delete_node_with_edges () =
  let st, vm, _, _ = mk_store () in
  (match Store.delete st ~at:t1 vm with
  | Ok _ -> Alcotest.fail "deleted node with live edges"
  | Error _ -> ());
  ok (Store.delete st ~at:t1 ~cascade:true vm);
  check_bool "cascade removed edges" true
    (Store.out_edges st ~tc:Time_constraint.snapshot vm = [])

let test_range_visibility () =
  let st, vm, _, _ = mk_store () in
  ok (Store.delete st ~at:t1 ~cascade:true vm);
  let r12 = Time_constraint.range t0 t2 in
  check_bool "range sees deleted" true (Store.get st ~tc:r12 vm <> None);
  let r23 = Time_constraint.range t2 t3 in
  check_bool "later range misses" true (Store.get st ~tc:r23 vm = None)

let test_presence () =
  let st, vm, _, _ = mk_store () in
  ok (Store.update st ~at:t1 vm ~fields:(fields [ ("status", Value.Str "Red") ]));
  ok (Store.update st ~at:t2 vm ~fields:(fields [ ("status", Value.Str "Green") ]));
  let green e = Value.equal (Entity.field e "status") (Value.Str "Green") in
  let ps =
    Store.presence st ~tc:(Time_constraint.range t0 t3) ~pred:green vm
  in
  (* Green during [t0,t1) and [t2,t3) — two fragments. *)
  check_int "two green periods" 2 (Interval_set.cardinality ps);
  check_bool "green at t0" true (Interval_set.contains ps t0);
  check_bool "red in the middle" false (Interval_set.contains ps t1);
  let always e = ignore e; true in
  let all = Store.presence st ~tc:(Time_constraint.range t0 t3) ~pred:always vm in
  check_int "continuous existence merges" 1 (Interval_set.cardinality all)

(* ---------------- scans, generalization, adjacency ---------------- *)

let test_scan_class_generalization () =
  let st, _, _, _ = mk_store () in
  let _vmw =
    ok (Store.insert_node st ~at:t1 ~cls:"VMWare"
          ~fields:(fields [ ("vid", Value.Int 2) ]))
  in
  let vms = Store.scan_class st ~tc:Time_constraint.snapshot "VM" in
  check_int "VM scan sees subclass instances" 2 (List.length vms);
  let nodes = Store.scan_class st ~tc:Time_constraint.snapshot "Node" in
  check_int "Node scan sees everything" 3 (List.length nodes);
  let edges = Store.scan_class st ~tc:Time_constraint.snapshot "Edge" in
  check_int "Edge scan" 1 (List.length edges)

let test_adjacency () =
  let st, vm, host, edge = mk_store () in
  let out = Store.out_edges st ~tc:Time_constraint.snapshot vm in
  check_int "one out edge" 1 (List.length out);
  check_bool "edge identity" true ((List.hd out).Entity.uid = edge);
  let inc = Store.in_edges st ~tc:Time_constraint.snapshot host in
  check_int "one in edge" 1 (List.length inc);
  check_bool "endpoints" true
    (Entity.src (List.hd inc) = vm && Entity.dst (List.hd inc) = host);
  (* After deletion adjacency empties in snapshot but not in the past. *)
  ok (Store.delete st ~at:t1 edge);
  check_int "snapshot adjacency empty" 0
    (List.length (Store.out_edges st ~tc:Time_constraint.snapshot vm));
  check_int "past adjacency intact" 1
    (List.length (Store.out_edges st ~tc:(Time_constraint.at t0) vm))

(* ---------------- indexes ---------------- *)

let test_index_lookup () =
  let st, _, _, _ = mk_store () in
  for i = 2 to 50 do
    ignore
      (ok (Store.insert_node st ~at:t1 ~cls:"VM"
             ~fields:(fields [ ("vid", Value.Int i); ("status", Value.Str "Green") ])))
  done;
  ok (Store.create_index st ~cls:"VM" ~field:"vid");
  check_bool "index exists" true (Store.has_index st ~cls:"VM" ~field:"vid");
  let hits = Store.lookup st ~tc:Time_constraint.snapshot ~cls:"VM" ~field:"vid" (Value.Int 17) in
  check_int "one hit" 1 (List.length hits);
  (* Unindexed lookup falls back to a scan with equal results. *)
  let unindexed =
    Store.lookup st ~tc:Time_constraint.snapshot ~cls:"VM" ~field:"status"
      (Value.Str "Green")
  in
  check_int "scan fallback" 50 (List.length unindexed)

let test_index_sees_past_values () =
  let st, vm, _, _ = mk_store () in
  ok (Store.create_index st ~cls:"VM" ~field:"status");
  ok (Store.update st ~at:t1 vm ~fields:(fields [ ("status", Value.Str "Red") ]));
  let past =
    Store.lookup st ~tc:(Time_constraint.at t0) ~cls:"VM" ~field:"status"
      (Value.Str "Green")
  in
  check_int "past value found via index" 1 (List.length past);
  let now =
    Store.lookup st ~tc:Time_constraint.snapshot ~cls:"VM" ~field:"status"
      (Value.Str "Green")
  in
  check_int "current value changed" 0 (List.length now)

(* ---------------- statistics ---------------- *)

let test_stats () =
  let st, vm, _, _ = mk_store () in
  ok (Store.update st ~at:t1 vm ~fields:(fields [ ("status", Value.Str "Red") ]));
  check_int "entities" 3 (Store.count_entities st);
  check_int "versions = entities + updates" 4 (Store.count_versions st);
  check_int "current total" 3 (Store.count_current_total st);
  check_int "count VM" 1 (Store.count_current st ~cls:"VM");
  check_int "count Node" 2 (Store.count_current st ~cls:"Node");
  let hist = Store.class_histogram st in
  check_bool "histogram has VM" true (List.mem_assoc "VM" hist)

(* ---------------- property tests ---------------- *)

(* Random mutation sequences preserve invariants: version intervals of a
   uid are disjoint and ordered; snapshot = versions with open interval;
   adjacency symmetric with endpoints. *)
let prop_version_intervals_ordered =
  QCheck.Test.make ~name:"version intervals disjoint and ordered" ~count:60
    QCheck.(small_list (pair (int_bound 4) (int_bound 30)))
    (fun ops ->
      let st = Store.create (schema ()) in
      let uids = ref [] in
      let time = ref t0 in
      let step (kind, n) =
        time := Time_point.add_seconds !time 60.;
        match kind with
        | 0 | 1 ->
            (match
               Store.insert_node st ~at:!time ~cls:"VM"
                 ~fields:(fields [ ("vid", Value.Int n) ])
             with
            | Ok u -> uids := u :: !uids
            | Error _ -> ())
        | 2 -> (
            match !uids with
            | [] -> ()
            | l ->
                let u = List.nth l (n mod List.length l) in
                ignore
                  (Store.update st ~at:!time u
                     ~fields:(fields [ ("status", Value.Str (string_of_int n)) ])))
        | _ -> (
            match !uids with
            | [] -> ()
            | l ->
                let u = List.nth l (n mod List.length l) in
                ignore (Store.delete st ~at:!time ~cascade:true u))
      in
      List.iter step ops;
      List.for_all
        (fun u ->
          let vs = Store.versions st u in
          let rec ordered = function
            | (a : Entity.t) :: (b :: _ as rest) -> (
                match a.period.Interval.stop with
                | None -> false
                | Some e ->
                    Time_point.compare e b.period.Interval.start <= 0 && ordered rest)
            | _ -> true
          in
          let open_count =
            List.length
              (List.filter (fun (v : Entity.t) -> Interval.is_current v.period) vs)
          in
          ordered vs && open_count <= 1
          && (open_count = 1) = (Store.get st ~tc:Time_constraint.snapshot u <> None))
        !uids)

let prop_timeslice_matches_history =
  (* At any past instant, get ~tc:(At t) returns exactly the version
     whose interval contains t. *)
  QCheck.Test.make ~name:"timeslice agrees with version intervals" ~count:60
    QCheck.(pair (int_bound 20) (int_bound 100))
    (fun (updates, probe_minutes) ->
      let st = Store.create (schema ()) in
      let u =
        match
          Store.insert_node st ~at:t0 ~cls:"VM" ~fields:(fields [ ("vid", Value.Int 1) ])
        with
        | Ok u -> u
        | Error _ -> assert false
      in
      let time = ref t0 in
      for i = 1 to updates do
        time := Time_point.add_seconds !time 600.;
        ignore
          (Store.update st ~at:!time u
             ~fields:(fields [ ("status", Value.Str (string_of_int i)) ]))
      done;
      let probe = Time_point.add_seconds t0 (float_of_int probe_minutes *. 60.) in
      let via_get = Store.get st ~tc:(Time_constraint.at probe) u in
      let via_versions =
        List.find_opt
          (fun (v : Entity.t) -> Interval.contains v.period probe)
          (Store.versions st u)
      in
      match (via_get, via_versions) with
      | None, None -> true
      | Some a, Some b ->
          Value.equal (Entity.field a "status") (Entity.field b "status")
      | _ -> false)

let () =
  Alcotest.run "nepal_store"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "insert and get" `Quick test_insert_and_get;
          Alcotest.test_case "schema violations rejected" `Quick
            test_schema_violations_rejected;
          Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
        ] );
      ( "temporal",
        [
          Alcotest.test_case "update creates version" `Quick test_update_creates_version;
          Alcotest.test_case "delete and timeslice" `Quick test_delete_and_timeslice;
          Alcotest.test_case "delete with edges" `Quick test_delete_node_with_edges;
          Alcotest.test_case "range visibility" `Quick test_range_visibility;
          Alcotest.test_case "presence intervals" `Quick test_presence;
        ] );
      ( "scans",
        [
          Alcotest.test_case "class generalization" `Quick test_scan_class_generalization;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "lookup" `Quick test_index_lookup;
          Alcotest.test_case "historical values" `Quick test_index_sees_past_values;
        ] );
      ("stats", [ Alcotest.test_case "counters" `Quick test_stats ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_version_intervals_ordered; prop_timeslice_matches_history ] );
    ]

test/test_backends.ml: Alcotest Array Core Lazy List Nepal_query Printf QCheck QCheck_alcotest String

test/test_schema.ml: Alcotest Ftype List Nepal_schema Nepal_util QCheck QCheck_alcotest Result Schema Tosca Value

test/test_schema.mli:

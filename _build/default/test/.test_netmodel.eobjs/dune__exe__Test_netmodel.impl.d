test/test_netmodel.ml: Alcotest Array Core Lazy List Nepal_loader Nepal_netmodel Nepal_schema Nepal_store Nepal_util Printf

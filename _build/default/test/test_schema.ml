open Nepal_schema
module Strmap = Nepal_util.Strmap

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* A miniature version of the paper's Figure 3 schema. *)
let fig3 () =
  Schema.create_exn
    ~data_types:
      [
        Schema.data_decl "routingTableEntry"
          ~fields:
            [
              ("address", Ftype.T_ip);
              ("mask", Ftype.T_int);
              ("interface", Ftype.T_string);
            ];
      ]
    ~edge_rules:
      [
        { Schema.edge = "composed_of"; src = "VNF"; dst = "VFC" };
        { Schema.edge = "on_vm"; src = "VFC"; dst = "VM" };
        { Schema.edge = "on_server"; src = "VM"; dst = "physical_server" };
        { Schema.edge = "connects_to"; src = "physical_server"; dst = "switch" };
        { Schema.edge = "connects_to"; src = "switch"; dst = "switch" };
        { Schema.edge = "connects_to"; src = "switch"; dst = "physical_server" };
      ]
    [
      Schema.class_decl "VNF" ~parent:"Node"
        ~fields:[ ("id", Ftype.T_int); ("name", Ftype.T_string) ];
      Schema.class_decl "VNF_DNS" ~parent:"VNF";
      Schema.class_decl "VNF_Firewall" ~parent:"VNF"
        ~fields:[ ("rules", Ftype.T_list Ftype.T_string) ];
      Schema.class_decl "VFC" ~parent:"Node" ~fields:[ ("id", Ftype.T_int) ];
      Schema.class_decl "Container" ~parent:"Node" ~abstract:true
        ~fields:[ ("id", Ftype.T_int) ];
      Schema.class_decl "VM" ~parent:"Container"
        ~fields:[ ("status", Ftype.T_string) ];
      Schema.class_decl "VMWare" ~parent:"VM";
      Schema.class_decl "OnMetal" ~parent:"VM";
      Schema.class_decl "Docker" ~parent:"Container";
      Schema.class_decl "physical_server" ~parent:"Node"
        ~fields:
          [
            ("id", Ftype.T_int);
            ("routingTable", Ftype.T_list (Ftype.T_data "routingTableEntry"));
          ];
      Schema.class_decl "switch" ~parent:"Node" ~fields:[ ("id", Ftype.T_int) ];
      Schema.class_decl "Vertical" ~parent:"Edge" ~abstract:true;
      Schema.class_decl "composed_of" ~parent:"Vertical";
      Schema.class_decl "HostedOn" ~parent:"Vertical" ~abstract:true;
      Schema.class_decl "on_vm" ~parent:"HostedOn";
      Schema.class_decl "on_server" ~parent:"HostedOn";
      Schema.class_decl "connects_to" ~parent:"Edge"
        ~fields:[ ("bandwidth", Ftype.T_int) ];
    ]

(* ---------------- Ftype ---------------- *)

let test_ftype_parse () =
  let ok s expected =
    match Ftype.of_string s with
    | Ok t -> check_bool s true (Ftype.equal t expected)
    | Error e -> Alcotest.fail e
  in
  ok "int" Ftype.T_int;
  ok "string" Ftype.T_string;
  ok "ip" Ftype.T_ip;
  ok "list<int>" (Ftype.T_list Ftype.T_int);
  ok "set<string>" (Ftype.T_set Ftype.T_string);
  ok "map<string,int>" (Ftype.T_map (Ftype.T_string, Ftype.T_int));
  ok "list<map<string,list<int>>>"
    (Ftype.T_list (Ftype.T_map (Ftype.T_string, Ftype.T_list Ftype.T_int)));
  ok "routingTableEntry" (Ftype.T_data "routingTableEntry")

let test_ftype_parse_errors () =
  List.iter
    (fun s ->
      match Ftype.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "list<int"; "list<>"; "vector<int>"; "" ]

let test_ftype_roundtrip () =
  List.iter
    (fun s ->
      match Ftype.of_string s with
      | Ok t -> check_string s s (Ftype.to_string t)
      | Error e -> Alcotest.fail e)
    [ "int"; "list<int>"; "map<string,int>"; "set<ip>" ]

(* ---------------- Value ---------------- *)

let test_value_ip () =
  (match Value.ip_of_string "10.0.255.1" with
  | Ok ip -> check_string "roundtrip" "10.0.255.1" (Value.ip_to_string ip)
  | Error e -> Alcotest.fail e);
  (match Value.ip_of_string "256.0.0.1" with
  | Ok _ -> Alcotest.fail "accepted 256"
  | Error _ -> ());
  match Value.ip_of_string "1.2.3" with
  | Ok _ -> Alcotest.fail "accepted short"
  | Error _ -> ()

let test_value_order () =
  check_bool "int vs float comparable" true
    (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  check_bool "set dedups" true
    (Value.equal
       (Value.vset [ Value.Int 1; Value.Int 1; Value.Int 2 ])
       (Value.vset [ Value.Int 2; Value.Int 1 ]));
  check_bool "map later bindings win" true
    (Value.equal
       (Value.vmap [ (Value.Str "a", Value.Int 1); (Value.Str "a", Value.Int 2) ])
       (Value.vmap [ (Value.Str "a", Value.Int 2) ]))

(* ---------------- hierarchy ---------------- *)

let test_hierarchy_basics () =
  let s = fig3 () in
  check_bool "VM is node" true (Schema.kind_of s "VM" = Some Schema.Node_kind);
  check_bool "on_vm is edge" true (Schema.kind_of s "on_vm" = Some Schema.Edge_kind);
  check_bool "VMWare < VM" true (Schema.is_subclass s ~sub:"VMWare" ~sup:"VM");
  check_bool "VMWare < Container" true
    (Schema.is_subclass s ~sub:"VMWare" ~sup:"Container");
  check_bool "VMWare < Node" true (Schema.is_subclass s ~sub:"VMWare" ~sup:"Node");
  check_bool "reflexive" true (Schema.is_subclass s ~sub:"VM" ~sup:"VM");
  check_bool "Docker not < VM" false (Schema.is_subclass s ~sub:"Docker" ~sup:"VM");
  check_bool "on_vm < Vertical" true
    (Schema.is_subclass s ~sub:"on_vm" ~sup:"Vertical")

let test_inheritance_label () =
  let s = fig3 () in
  check_string "gremlin label" "Node:Container:VM:VMWare"
    (Schema.inheritance_label s "VMWare");
  check_string "edge label" "Edge:Vertical:HostedOn:on_vm"
    (Schema.inheritance_label s "on_vm")

let test_subclasses () =
  let s = fig3 () in
  let subs = Schema.subclasses s "VM" in
  check_bool "VM in own subclasses" true (List.mem "VM" subs);
  check_bool "VMWare included" true (List.mem "VMWare" subs);
  check_bool "OnMetal included" true (List.mem "OnMetal" subs);
  check_bool "Docker excluded" false (List.mem "Docker" subs);
  let container_subs = Schema.concrete_subclasses s "Container" in
  check_bool "abstract Container excluded from concrete" false
    (List.mem "Container" container_subs);
  check_int "concrete containers" 4 (List.length container_subs)

let test_lca () =
  let s = fig3 () in
  check_bool "lca VMWare/OnMetal = VM" true
    (Schema.least_common_ancestor s [ "VMWare"; "OnMetal" ] = Some "VM");
  check_bool "lca VMWare/Docker = Container" true
    (Schema.least_common_ancestor s [ "VMWare"; "Docker" ] = Some "Container");
  check_bool "lca VM/switch = Node" true
    (Schema.least_common_ancestor s [ "VM"; "switch" ] = Some "Node");
  check_bool "lca VM/on_vm = Any" true
    (Schema.least_common_ancestor s [ "VM"; "on_vm" ] = Some "Any");
  check_bool "lca singleton" true
    (Schema.least_common_ancestor s [ "VM" ] = Some "VM")

let test_fields_inherited () =
  let s = fig3 () in
  let fields = Schema.fields_of s "VMWare" in
  check_bool "inherits id from Container" true (List.mem_assoc "id" fields);
  check_bool "inherits status from VM" true (List.mem_assoc "status" fields);
  check_bool "field_type lookup" true
    (Schema.field_type s "VNF_Firewall" "name" = Some Ftype.T_string);
  check_bool "own field" true
    (Schema.field_type s "VNF_Firewall" "rules"
    = Some (Ftype.T_list Ftype.T_string));
  check_bool "parent lacks child field" true
    (Schema.field_type s "VNF" "rules" = None)

let test_shadowing_rejected () =
  match
    Schema.create
      [
        Schema.class_decl "A" ~parent:"Node" ~fields:[ ("x", Ftype.T_int) ];
        Schema.class_decl "B" ~parent:"A" ~fields:[ ("x", Ftype.T_string) ];
      ]
  with
  | Ok _ -> Alcotest.fail "field shadowing accepted"
  | Error _ -> ()

let test_cycle_rejected () =
  match
    Schema.create
      [ Schema.class_decl "A" ~parent:"B"; Schema.class_decl "B" ~parent:"A" ]
  with
  | Ok _ -> Alcotest.fail "parent cycle accepted"
  | Error _ -> ()

let test_duplicate_rejected () =
  match
    Schema.create
      [ Schema.class_decl "A" ~parent:"Node"; Schema.class_decl "A" ~parent:"Node" ]
  with
  | Ok _ -> Alcotest.fail "duplicate accepted"
  | Error _ -> ()

let test_data_cycle_rejected () =
  match
    Schema.create
      ~data_types:
        [
          Schema.data_decl "A" ~fields:[ ("b", Ftype.T_data "B") ];
          Schema.data_decl "B" ~fields:[ ("a", Ftype.T_list (Ftype.T_data "A")) ];
        ]
      []
  with
  | Ok _ -> Alcotest.fail "data composition cycle accepted"
  | Error _ -> ()

let test_edge_rules () =
  let s = fig3 () in
  check_bool "declared edge ok" true
    (Schema.edge_allowed s ~edge:"on_vm" ~src:"VFC" ~dst:"VM");
  check_bool "subclass endpoints ok" true
    (Schema.edge_allowed s ~edge:"on_vm" ~src:"VFC" ~dst:"VMWare");
  check_bool "forbidden direct VNF->server" false
    (Schema.edge_allowed s ~edge:"on_vm" ~src:"VNF" ~dst:"physical_server");
  check_bool "switch-to-switch ok" true
    (Schema.edge_allowed s ~edge:"connects_to" ~src:"switch" ~dst:"switch");
  check_bool "server-to-server not declared" false
    (Schema.edge_allowed s ~edge:"connects_to" ~src:"physical_server"
       ~dst:"physical_server")

let test_cardinality_hint_inherited () =
  let s =
    Schema.create_exn
      [
        Schema.class_decl "A" ~parent:"Node" ~cardinality_hint:500;
        Schema.class_decl "B" ~parent:"A";
        Schema.class_decl "C" ~parent:"B" ~cardinality_hint:7;
      ]
  in
  check_bool "own hint" true (Schema.cardinality_hint s "C" = Some 7);
  check_bool "inherited hint" true (Schema.cardinality_hint s "B" = Some 500);
  check_bool "no hint" true (Schema.cardinality_hint s "Node" = None)

(* ---------------- typechecking ---------------- *)

let test_typecheck_record () =
  let s = fig3 () in
  let good = Strmap.of_list [ ("id", Value.Int 1); ("status", Value.Str "Green") ] in
  (match Schema.typecheck_record s "VM" good with
  | Ok completed ->
      check_bool "completed has all fields" true (Strmap.mem "id" completed)
  | Error e -> Alcotest.fail e);
  (match Schema.typecheck_record s "VM" (Strmap.of_list [ ("bogus", Value.Int 1) ]) with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error _ -> ());
  (match Schema.typecheck_record s "VM" (Strmap.of_list [ ("id", Value.Str "x") ]) with
  | Ok _ -> Alcotest.fail "ill-typed accepted"
  | Error _ -> ());
  (match Schema.typecheck_record s "Container" Strmap.empty with
  | Ok _ -> Alcotest.fail "abstract instantiation accepted"
  | Error _ -> ());
  match Schema.typecheck_record s "VM" Strmap.empty with
  | Ok completed ->
      check_bool "null filled" true
        (Value.equal (Strmap.find "status" completed) Value.Null)
  | Error e -> Alcotest.fail e

let test_typecheck_structured_data () =
  let s = fig3 () in
  let entry address =
    Value.Data
      ( "routingTableEntry",
        Strmap.of_list
          [
            ("address", Value.Ip (Result.get_ok (Value.ip_of_string address)));
            ("mask", Value.Int 24);
            ("interface", Value.Str "eth0");
          ] )
  in
  let record =
    Strmap.of_list
      [ ("id", Value.Int 9); ("routingTable", Value.List [ entry "10.0.0.1" ]) ]
  in
  (match Schema.typecheck_record s "physical_server" record with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let bad =
    Value.Data ("routingTableEntry", Strmap.of_list [ ("mask", Value.Str "x") ])
  in
  match
    Schema.typecheck_record s "physical_server"
      (Strmap.of_list [ ("routingTable", Value.List [ bad ]) ])
  with
  | Ok _ -> Alcotest.fail "bad composite accepted"
  | Error _ -> ()

(* ---------------- TOSCA loader ---------------- *)

let tosca_doc =
  {|
# A fragment of the ONAP-style model.
data_types:
  routingTableEntry:
    properties:
      address: ip
      mask: int
      interface: string
node_types:
  VNF:
    properties:
      id: int
      name: string
  VNF_DNS:
    derived_from: VNF
  VM:
    cardinality_hint: 1000
    properties:
      id: int
      status: string
      routingTable: list<routingTableEntry>
edge_types:
  Vertical:
    abstract: true
  hosted_on:
    derived_from: Vertical
    valid_endpoints:
      - from: VNF
        to: VM
|}

let test_tosca_parse () =
  match Tosca.parse tosca_doc with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check_bool "VNF_DNS < VNF" true
        (Schema.is_subclass s ~sub:"VNF_DNS" ~sup:"VNF");
      check_bool "hosted_on < Vertical" true
        (Schema.is_subclass s ~sub:"hosted_on" ~sup:"Vertical");
      check_bool "Vertical abstract" true (Schema.is_abstract s "Vertical");
      check_bool "hint" true (Schema.cardinality_hint s "VM" = Some 1000);
      check_bool "container field type" true
        (Schema.field_type s "VM" "routingTable"
        = Some (Ftype.T_list (Ftype.T_data "routingTableEntry")));
      check_bool "edge rule" true
        (Schema.edge_allowed s ~edge:"hosted_on" ~src:"VNF_DNS" ~dst:"VM");
      check_bool "edge rule restricts" false
        (Schema.edge_allowed s ~edge:"hosted_on" ~src:"VM" ~dst:"VNF")

let test_tosca_roundtrip () =
  let s1 = Tosca.parse_exn tosca_doc in
  let rendered = Tosca.render s1 in
  match Tosca.parse rendered with
  | Error e -> Alcotest.failf "re-parse failed: %s\n%s" e rendered
  | Ok s2 ->
      check_bool "same classes" true
        (Schema.all_classes s1 = Schema.all_classes s2);
      List.iter
        (fun c ->
          check_bool (c ^ " same fields") true
            (Schema.fields_of s1 c = Schema.fields_of s2 c);
          check_bool (c ^ " same parent") true
            (Schema.parent_of s1 c = Schema.parent_of s2 c))
        (Schema.all_classes s1);
      check_bool "rule preserved" true
        (Schema.edge_allowed s2 ~edge:"hosted_on" ~src:"VNF" ~dst:"VM"
        && not (Schema.edge_allowed s2 ~edge:"hosted_on" ~src:"VM" ~dst:"VNF"))

let test_tosca_errors () =
  List.iter
    (fun doc ->
      match Tosca.parse doc with
      | Ok _ -> Alcotest.failf "accepted malformed doc %S" doc
      | Error _ -> ())
    [
      "node_types:\n  A:\n    derived_from: Missing\n";
      "node_types:\n  A:\n    properties:\n      x: vector<int>\n";
      "node_types:\n  A:\n    abstract: true\n  A:\n    abstract: true\n";
    ]

(* ---------------- properties ---------------- *)

let arb_class_names =
  let s = fig3 () in
  QCheck.oneofl (Schema.all_classes s)

let prop_lca_is_ancestor =
  let s = fig3 () in
  QCheck.Test.make ~name:"lca is an ancestor of both" ~count:200
    QCheck.(pair arb_class_names arb_class_names)
    (fun (a, b) ->
      match Schema.least_common_ancestor s [ a; b ] with
      | None -> false
      | Some l ->
          Schema.is_subclass s ~sub:a ~sup:l && Schema.is_subclass s ~sub:b ~sup:l)

let prop_subclass_transitive =
  let s = fig3 () in
  QCheck.Test.make ~name:"subclass relation transitive" ~count:200
    QCheck.(triple arb_class_names arb_class_names arb_class_names)
    (fun (a, b, c) ->
      (not (Schema.is_subclass s ~sub:a ~sup:b && Schema.is_subclass s ~sub:b ~sup:c))
      || Schema.is_subclass s ~sub:a ~sup:c)

let prop_subclasses_sound =
  let s = fig3 () in
  QCheck.Test.make ~name:"subclasses returns exactly the subclasses" ~count:100
    arb_class_names
    (fun c ->
      let subs = Schema.subclasses s c in
      List.for_all (fun x -> Schema.is_subclass s ~sub:x ~sup:c) subs
      && List.for_all
           (fun x -> Schema.is_subclass s ~sub:x ~sup:c = List.mem x subs)
           (Schema.all_classes s))

let () =
  Alcotest.run "nepal_schema"
    [
      ( "ftype",
        [
          Alcotest.test_case "parse" `Quick test_ftype_parse;
          Alcotest.test_case "parse errors" `Quick test_ftype_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_ftype_roundtrip;
        ] );
      ( "value",
        [
          Alcotest.test_case "ip addresses" `Quick test_value_ip;
          Alcotest.test_case "ordering & containers" `Quick test_value_order;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "basics" `Quick test_hierarchy_basics;
          Alcotest.test_case "inheritance label" `Quick test_inheritance_label;
          Alcotest.test_case "subclasses" `Quick test_subclasses;
          Alcotest.test_case "least common ancestor" `Quick test_lca;
          Alcotest.test_case "inherited fields" `Quick test_fields_inherited;
          Alcotest.test_case "shadowing rejected" `Quick test_shadowing_rejected;
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
          Alcotest.test_case "data cycle rejected" `Quick test_data_cycle_rejected;
          Alcotest.test_case "edge rules" `Quick test_edge_rules;
          Alcotest.test_case "cardinality hints" `Quick test_cardinality_hint_inherited;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "records" `Quick test_typecheck_record;
          Alcotest.test_case "structured data" `Quick test_typecheck_structured_data;
        ] );
      ( "tosca",
        [
          Alcotest.test_case "parse" `Quick test_tosca_parse;
          Alcotest.test_case "render roundtrip" `Quick test_tosca_roundtrip;
          Alcotest.test_case "errors" `Quick test_tosca_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lca_is_ancestor; prop_subclass_transitive; prop_subclasses_sound ]
      );
    ]

test/test_core.ml: Alcotest Core List

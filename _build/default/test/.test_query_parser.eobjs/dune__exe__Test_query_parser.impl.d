test/test_query_parser.ml: Alcotest List Nepal_query Nepal_rpe Nepal_schema Nepal_temporal

test/test_query_parser.mli:

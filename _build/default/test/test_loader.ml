(* The update-by-snapshot service (Section 3.1): diffing periodic full
   snapshots into inserts/updates/deletes, with garbage rejected before
   any mutation. *)

open Nepal_loader
module Store = Nepal_store.Graph_store
module Entity = Nepal_store.Entity
module Schema = Nepal_schema.Schema
module Ftype = Nepal_schema.Ftype
module Value = Nepal_schema.Value
module Time_point = Nepal_temporal.Time_point
module Time_constraint = Nepal_temporal.Time_constraint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tp = Time_point.of_string_exn
let t0 = tp "2017-02-01 00:00:00"
let t1 = tp "2017-02-02 00:00:00"
let t2 = tp "2017-02-03 00:00:00"

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let schema () =
  Schema.create_exn
    [
      Schema.class_decl "VM" ~parent:"Node"
        ~fields:[ ("id", Ftype.T_int); ("status", Ftype.T_string) ];
      Schema.class_decl "Host" ~parent:"Node" ~fields:[ ("id", Ftype.T_int) ];
      Schema.class_decl "HostedOn" ~parent:"Edge";
    ]

let i n = Value.Int n
let s x = Value.Str x

let snap1 =
  {
    Snapshot.nodes =
      [
        Snapshot.node ~cls:"VM" ~fields:[ ("id", i 1); ("status", s "Green") ] "vm-1";
        Snapshot.node ~cls:"VM" ~fields:[ ("id", i 2); ("status", s "Green") ] "vm-2";
        Snapshot.node ~cls:"Host" ~fields:[ ("id", i 100) ] "host-a";
      ];
    edges =
      [
        Snapshot.edge ~cls:"HostedOn" ~src:"vm-1" ~dst:"host-a" "e-1";
        Snapshot.edge ~cls:"HostedOn" ~src:"vm-2" ~dst:"host-a" "e-2";
      ];
  }

let test_initial_load () =
  let store = Store.create (schema ()) in
  let loader = Snapshot_loader.create store in
  let d = ok (Snapshot_loader.apply loader ~at:t0 snap1) in
  check_int "inserted" 5 d.Snapshot_loader.inserted;
  check_int "deleted" 0 d.Snapshot_loader.deleted;
  check_int "live entities" 5 (Store.count_current_total store)

let test_idempotent_reapply () =
  let store = Store.create (schema ()) in
  let loader = Snapshot_loader.create store in
  ignore (ok (Snapshot_loader.apply loader ~at:t0 snap1));
  let d = ok (Snapshot_loader.apply loader ~at:t1 snap1) in
  check_int "nothing inserted" 0 d.Snapshot_loader.inserted;
  check_int "nothing updated" 0 d.Snapshot_loader.updated;
  check_int "all unchanged" 5 d.Snapshot_loader.unchanged;
  (* No new versions were created. *)
  check_int "version count stable" 5 (Store.count_versions store)

let test_field_change_becomes_update () =
  let store = Store.create (schema ()) in
  let loader = Snapshot_loader.create store in
  ignore (ok (Snapshot_loader.apply loader ~at:t0 snap1));
  let snap2 =
    {
      snap1 with
      Snapshot.nodes =
        [
          Snapshot.node ~cls:"VM" ~fields:[ ("id", i 1); ("status", s "Red") ] "vm-1";
          Snapshot.node ~cls:"VM" ~fields:[ ("id", i 2); ("status", s "Green") ] "vm-2";
          Snapshot.node ~cls:"Host" ~fields:[ ("id", i 100) ] "host-a";
        ];
    }
  in
  let d = ok (Snapshot_loader.apply loader ~at:t1 snap2) in
  check_int "one update" 1 d.Snapshot_loader.updated;
  let uid = Option.get (Snapshot_loader.uid_of_key loader "vm-1") in
  (match Store.get store ~tc:Time_constraint.snapshot uid with
  | Some e -> check_bool "status red now" true (Value.equal (Entity.field e "status") (s "Red"))
  | None -> Alcotest.fail "vm-1 missing");
  (* History preserved. *)
  match Store.get store ~tc:(Time_constraint.at t0) uid with
  | Some e -> check_bool "was green" true (Value.equal (Entity.field e "status") (s "Green"))
  | None -> Alcotest.fail "vm-1 missing at t0"

let test_disappearance_becomes_delete () =
  let store = Store.create (schema ()) in
  let loader = Snapshot_loader.create store in
  ignore (ok (Snapshot_loader.apply loader ~at:t0 snap1));
  let snap2 =
    {
      Snapshot.nodes =
        [
          Snapshot.node ~cls:"VM" ~fields:[ ("id", i 1); ("status", s "Green") ] "vm-1";
          Snapshot.node ~cls:"Host" ~fields:[ ("id", i 100) ] "host-a";
        ];
      edges = [ Snapshot.edge ~cls:"HostedOn" ~src:"vm-1" ~dst:"host-a" "e-1" ];
    }
  in
  let d = ok (Snapshot_loader.apply loader ~at:t1 snap2) in
  check_int "vm-2 and e-2 deleted" 2 d.Snapshot_loader.deleted;
  check_bool "key unbound" true (Snapshot_loader.uid_of_key loader "vm-2" = None);
  check_int "live entities" 3 (Store.count_current_total store)

let test_edge_rehoming () =
  let store = Store.create (schema ()) in
  let loader = Snapshot_loader.create store in
  ignore (ok (Snapshot_loader.apply loader ~at:t0 snap1));
  let snap2 =
    {
      Snapshot.nodes =
        snap1.Snapshot.nodes
        @ [ Snapshot.node ~cls:"Host" ~fields:[ ("id", i 200) ] "host-b" ];
      edges =
        [
          Snapshot.edge ~cls:"HostedOn" ~src:"vm-1" ~dst:"host-b" "e-1";
          Snapshot.edge ~cls:"HostedOn" ~src:"vm-2" ~dst:"host-a" "e-2";
        ];
    }
  in
  let d = ok (Snapshot_loader.apply loader ~at:t1 snap2) in
  (* host-b inserted; e-1 replaced (counted as an update). *)
  check_int "inserted host" 1 d.Snapshot_loader.inserted;
  check_bool "edge updated" true (d.Snapshot_loader.updated >= 1);
  let e1 = Option.get (Snapshot_loader.uid_of_key loader "e-1") in
  let hostb = Option.get (Snapshot_loader.uid_of_key loader "host-b") in
  match Store.get store ~tc:Time_constraint.snapshot e1 with
  | Some e -> check_int "edge re-homed" hostb (Entity.dst e)
  | None -> Alcotest.fail "e-1 missing"

let test_garbage_rejected_atomically () =
  let store = Store.create (schema ()) in
  let loader = Snapshot_loader.create store in
  ignore (ok (Snapshot_loader.apply loader ~at:t0 snap1));
  let bad =
    {
      Snapshot.nodes =
        [
          Snapshot.node ~cls:"VM" ~fields:[ ("id", s "not-an-int") ] "vm-9";
        ];
      edges = [];
    }
  in
  (match Snapshot_loader.apply loader ~at:t1 bad with
  | Ok _ -> Alcotest.fail "ill-typed snapshot accepted"
  | Error _ -> ());
  (* Nothing was mutated: reapplying snap1 still reports unchanged. *)
  let d = ok (Snapshot_loader.apply loader ~at:t2 snap1) in
  check_int "store untouched by bad snapshot" 5 d.Snapshot_loader.unchanged

let test_dangling_and_duplicates_rejected () =
  let store = Store.create (schema ()) in
  let loader = Snapshot_loader.create store in
  (match
     Snapshot_loader.apply loader ~at:t0
       {
         Snapshot.nodes = [ Snapshot.node ~cls:"VM" "vm-1" ];
         edges = [ Snapshot.edge ~cls:"HostedOn" ~src:"vm-1" ~dst:"ghost" "e-1" ];
       }
   with
  | Ok _ -> Alcotest.fail "dangling endpoint accepted"
  | Error _ -> ());
  match
    Snapshot_loader.apply loader ~at:t0
      {
        Snapshot.nodes =
          [ Snapshot.node ~cls:"VM" "dup"; Snapshot.node ~cls:"VM" "dup" ];
        edges = [];
      }
  with
  | Ok _ -> Alcotest.fail "duplicate key accepted"
  | Error _ -> ()


(* ---- end to end: periodic snapshots then time-travel queries ---- *)

module Nepal = Core.Nepal

let test_snapshot_feed_time_travel () =
  (* Three daily snapshots from an external inventory: vm-1 migrates
     from host-a to host-b on day 2, and is decommissioned on day 3.
     Time-travel queries then reconstruct each day. *)
  let store = Store.create (schema ()) in
  let loader = Snapshot_loader.create store in
  let day1 = tp "2017-02-01 06:00:00" in
  let day2 = tp "2017-02-02 06:00:00" in
  let day3 = tp "2017-02-03 06:00:00" in
  let base_nodes =
    [
      Snapshot.node ~cls:"VM" ~fields:[ ("id", i 1); ("status", s "Green") ] "vm-1";
      Snapshot.node ~cls:"Host" ~fields:[ ("id", i 100) ] "host-a";
      Snapshot.node ~cls:"Host" ~fields:[ ("id", i 200) ] "host-b";
    ]
  in
  ignore
    (ok
       (Snapshot_loader.apply loader ~at:day1
          {
            Snapshot.nodes = base_nodes;
            edges = [ Snapshot.edge ~cls:"HostedOn" ~src:"vm-1" ~dst:"host-a" "e-1" ];
          }));
  ignore
    (ok
       (Snapshot_loader.apply loader ~at:day2
          {
            Snapshot.nodes = base_nodes;
            edges = [ Snapshot.edge ~cls:"HostedOn" ~src:"vm-1" ~dst:"host-b" "e-1" ];
          }));
  ignore
    (ok
       (Snapshot_loader.apply loader ~at:day3
          {
            Snapshot.nodes = List.tl base_nodes (* vm-1 gone *);
            edges = [];
          }));
  let db = Nepal.of_store store in
  let count q =
    match ok (Nepal.query db q) with
    | Nepal.Engine.Rows { rows; _ } -> List.length rows
    | Nepal.Engine.Table { rows; _ } -> List.length rows
  in
  (* Day 1 noon: on host-a. *)
  check_int "day1 on host-a" 1
    (count
       "AT '2017-02-01 12:00' Retrieve P From PATHS P \
        Where P MATCHES VM()->HostedOn()->Host(id=100)");
  check_int "day1 not on host-b" 0
    (count
       "AT '2017-02-01 12:00' Retrieve P From PATHS P \
        Where P MATCHES VM()->HostedOn()->Host(id=200)");
  (* Day 2 noon: migrated. *)
  check_int "day2 on host-b" 1
    (count
       "AT '2017-02-02 12:00' Retrieve P From PATHS P \
        Where P MATCHES VM()->HostedOn()->Host(id=200)");
  (* Day 3: decommissioned. *)
  check_int "day3 gone" 0
    (count
       "AT '2017-02-03 12:00' Retrieve P From PATHS P Where P MATCHES VM()");
  (* The full range query reports both hosting pathways with their
     maximal validity intervals. *)
  (match
     ok
       (Nepal.query db
          "AT '2017-02-01 00:00' : '2017-02-04 00:00' \
           Retrieve P From PATHS P Where P MATCHES VM()->HostedOn()->Host()")
   with
  | Nepal.Engine.Rows { rows; _ } ->
      check_int "two hosting epochs" 2 (List.length rows);
      List.iter
        (fun r ->
          let p = Nepal.Strmap.find "P" r.Nepal.Engine.paths in
          match p.Nepal.Path.valid with
          | Some v -> check_bool "closed epochs" true
              (match Nepal.Interval_set.last_moment v with
               | `Ended _ -> true
               | _ -> false)
          | None -> Alcotest.fail "no validity")
        rows
  | _ -> Alcotest.fail "expected rows");
  (* When did vm-1 run on host-a? Exactly [day1, day2). *)
  let rpe =
    ok
      (Nepal_rpe.Rpe.validate (Store.schema store)
         (Nepal_rpe.Rpe_parser.parse_exn "VM()->HostedOn()->Host(id=100)"))
  in
  match
    ok
      (Nepal.Temporal_agg.when_exists (Nepal.conn db)
         ~window:(day1, tp "2017-02-04 00:00") rpe)
  with
  | w -> (
      check_bool "starts day1" true
        (Nepal.Interval_set.contains w day1);
      check_bool "over by day2" false (Nepal.Interval_set.contains w day2);
      match Nepal.Interval_set.last_moment w with
      | `Ended e -> check_bool "ends at day2 load" true (Nepal.Time_point.equal e day2)
      | _ -> Alcotest.fail "expected ended")

let () =
  Alcotest.run "nepal_loader"
    [
      ( "snapshot_loader",
        [
          Alcotest.test_case "initial load" `Quick test_initial_load;
          Alcotest.test_case "idempotent reapply" `Quick test_idempotent_reapply;
          Alcotest.test_case "field change" `Quick test_field_change_becomes_update;
          Alcotest.test_case "disappearance" `Quick test_disappearance_becomes_delete;
          Alcotest.test_case "edge re-homing" `Quick test_edge_rehoming;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected_atomically;
          Alcotest.test_case "dangling/duplicates" `Quick test_dangling_and_duplicates_rejected;
        ] );
      ( "time_travel",
        [
          Alcotest.test_case "snapshot feed reconstruction" `Quick
            test_snapshot_feed_time_travel;
        ] );
    ]
